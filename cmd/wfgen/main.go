// Command wfgen generates workflow DAGs from the paper's Table I parameters
// or the structured scientific families, emitting Graphviz DOT or JSON plus
// an analysis summary (task/edge counts, expected finish time, critical
// path) — or, with -format schedule, an arrival schedule pairing each
// workflow with its virtual submit time under an arrival process or a
// replayed SWF/GWA grid trace.
//
// Usage:
//
//	wfgen [-family random|pipeline|forkjoin|montage|epigenomics]
//	      [-scale N] [-count N] [-seed N] [-format dot|json|summary|schedule]
//	      [-mips M] [-bw B]
//	      [-arrival batch|poisson:R|mmpp:R[:B]|diurnal:R[:P]|trace] [-trace FILE]
//
// Examples:
//
//	wfgen -family montage -scale 6 -format dot | dot -Tpng > montage.png
//	wfgen -family random -count 5 -format summary
//	wfgen -count 20 -format schedule -arrival poisson:120
//	wfgen -format schedule -arrival trace -trace sample
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"

	"repro/internal/dag"
	"repro/internal/stats"
	"repro/internal/workload/loadspec"
)

func main() {
	os.Exit(cliMain(os.Args[1:], os.Stdout, os.Stderr))
}

// cliMain parses args and generates the requested output, returning the
// process exit code (testable without a subprocess, like cmd/p2pgridsim).
func cliMain(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("wfgen", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		family  = fs.String("family", "random", "random|pipeline|forkjoin|montage|epigenomics")
		scale   = fs.Int("scale", 5, "family size parameter (stages/width/images/lanes)")
		count   = fs.Int("count", 1, "number of workflows to generate (defaults to the trace length under -arrival trace)")
		seed    = fs.Int64("seed", 1, "random seed")
		format  = fs.String("format", "summary", "dot|json|summary|schedule")
		mips    = fs.Float64("mips", dag.PaperAvgCapacityMIPS, "average node capacity (MIPS) pricing summary estimates")
		bw      = fs.Float64("bw", dag.PaperAvgBandwidthMbs, "average bandwidth (Mb/s) pricing summary estimates")
		arr     = fs.String("arrival", "poisson:60", "arrival process for -format schedule (batch|poisson:R|mmpp:R[:B]|diurnal:R[:P]|trace; rates in workflows/hour)")
		trcPath = fs.String("trace", "", "SWF/GWF trace for -arrival trace (\"sample\" = the bundled demo trace)")
		trscale = fs.Float64("trace-scale", 1, "multiply trace submit times by this factor")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if fs.NArg() > 0 {
		fmt.Fprintf(stderr, "wfgen: unexpected arguments %q\n", fs.Args())
		return 2
	}
	countSet, arrivalSet := false, false
	fs.Visit(func(f *flag.Flag) {
		switch f.Name {
		case "count":
			countSet = true
		case "arrival":
			arrivalSet = true
		}
	})
	if (arrivalSet || *trcPath != "") && *format != "schedule" {
		// Validation below still runs (a typo must fail), but the flags
		// have no effect outside the schedule format — say so.
		fmt.Fprintf(stderr, "wfgen: -arrival/-trace only affect -format schedule; %q ignores them\n", *format)
	}
	if err := run(genOptions{
		family: *family, scale: *scale, count: *count, countSet: countSet,
		seed: *seed, format: *format, mips: *mips, bw: *bw,
		arrival: *arr, tracePath: *trcPath, traceScale: *trscale,
	}, stdout); err != nil {
		fmt.Fprintln(stderr, "wfgen:", err)
		return 1
	}
	return 0
}

type genOptions struct {
	family     string
	scale      int
	count      int
	countSet   bool
	seed       int64
	format     string
	mips, bw   float64
	arrival    string
	tracePath  string
	traceScale float64
}

func run(o genOptions, stdout io.Writer) error {
	switch o.format {
	case "dot", "json", "summary", "schedule":
	default:
		return fmt.Errorf("unknown format %q (dot|json|summary|schedule)", o.format)
	}
	if o.mips <= 0 || o.bw <= 0 {
		return fmt.Errorf("-mips and -bw must be positive, got %v / %v", o.mips, o.bw)
	}
	est := dag.Estimates{AvgCapacityMIPS: o.mips, AvgBandwidthMbs: o.bw}

	// Resolve the arrival spec and trace eagerly — a typo in either flag
	// must fail for every format, not only for -format schedule. The
	// resolution rules and error vocabulary live in loadspec, shared with
	// p2pgridsim and the service API.
	sp, err := loadspec.Resolve(o.arrival, o.tracePath, o.traceScale)
	if err != nil {
		return err
	}
	spec, tr := sp.Arrival, sp.Trace

	// Resolve the schedule before generating, so -arrival trace can set
	// the workflow count from the trace length.
	var times []float64
	if o.format == "schedule" {
		if tr != nil {
			spec = tr.ArrivalSpec()
			if !o.countSet {
				o.count = len(spec.Times)
			}
		}
		if times, err = spec.Schedule(o.count, stats.SplitSeed(o.seed, 0x35)); err != nil {
			return err
		}
		fmt.Fprintf(stdout, "# arrival schedule: %d workflows, %s, seed %d\n", o.count, spec, o.seed)
		fmt.Fprintf(stdout, "# %10s  %-20s %6s %12s %10s\n", "submit(s)", "name", "tasks", "load(MI)", "eft(s)")
	}

	rng := stats.NewRand(o.seed, 0x17F)
	for i := 0; i < o.count; i++ {
		name := fmt.Sprintf("%s-%d", o.family, i)
		var w *dag.Workflow
		var err error
		if o.family == "random" {
			w, err = dag.Generate(name, dag.DefaultGenConfig(), rng)
		} else {
			w, err = dag.FamilyByName(o.family, name, o.scale, dag.DefaultWeights(rng))
		}
		if err != nil {
			return err
		}
		if o.format == "schedule" && tr != nil {
			// Mirror the simulator's replay scaling rule (workload.Generate):
			// total task load = runtime x procs x reference MIPS, so the
			// printed load/eft columns describe what a replay actually runs.
			job := tr.Jobs[i%len(tr.Jobs)]
			if total := w.TotalLoad(); total > 0 {
				if w, err = w.ScaleLoads(job.CPUSeconds() * o.mips / total); err != nil {
					return err
				}
			}
		}
		switch o.format {
		case "dot":
			fmt.Fprint(stdout, w.DOT())
		case "json":
			data, err := json.MarshalIndent(w, "", "  ")
			if err != nil {
				return err
			}
			fmt.Fprintln(stdout, string(data))
		case "summary":
			path, eft := dag.CriticalPath(w, est)
			shape := dag.ShapeOf(w)
			fmt.Fprintf(stdout, "%s: %d tasks, %d edges, total load %.0f MI, eft %.0f s, critical path %d tasks, depth %d, max width %d, parallelism %.1f\n",
				w.Name, w.Len(), w.Edges(), w.TotalLoad(), eft, len(path),
				shape.Depth, shape.MaxWidth, shape.Parallelism)
		case "schedule":
			_, eft := dag.CriticalPath(w, est)
			fmt.Fprintf(stdout, "%12.1f  %-20s %6d %12.0f %10.0f\n",
				times[i], w.Name, w.Len(), w.TotalLoad(), eft)
		}
	}
	return nil
}
