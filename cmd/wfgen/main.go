// Command wfgen generates workflow DAGs from the paper's Table I parameters
// or the structured scientific families, emitting Graphviz DOT or JSON plus
// an analysis summary (task/edge counts, expected finish time, critical
// path).
//
// Usage:
//
//	wfgen [-family random|pipeline|forkjoin|montage|epigenomics]
//	      [-scale N] [-count N] [-seed N] [-format dot|json|summary]
//
// Examples:
//
//	wfgen -family montage -scale 6 -format dot | dot -Tpng > montage.png
//	wfgen -family random -count 5 -format summary
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"

	"repro/internal/dag"
	"repro/internal/stats"
)

func main() {
	var (
		family = flag.String("family", "random", "random|pipeline|forkjoin|montage|epigenomics")
		scale  = flag.Int("scale", 5, "family size parameter (stages/width/images/lanes)")
		count  = flag.Int("count", 1, "number of workflows to generate")
		seed   = flag.Int64("seed", 1, "random seed")
		format = flag.String("format", "summary", "dot|json|summary")
	)
	flag.Parse()
	rng := stats.NewRand(*seed, 0x17F)
	est := dag.Estimates{AvgCapacityMIPS: 6.2, AvgBandwidthMbs: 5.05}

	for i := 0; i < *count; i++ {
		name := fmt.Sprintf("%s-%d", *family, i)
		var w *dag.Workflow
		var err error
		if *family == "random" {
			w, err = dag.Generate(name, dag.DefaultGenConfig(), rng)
		} else {
			w, err = dag.FamilyByName(*family, name, *scale, dag.DefaultWeights(rng))
		}
		if err != nil {
			fmt.Fprintln(os.Stderr, "wfgen:", err)
			os.Exit(1)
		}
		switch *format {
		case "dot":
			fmt.Print(w.DOT())
		case "json":
			data, err := json.MarshalIndent(w, "", "  ")
			if err != nil {
				fmt.Fprintln(os.Stderr, "wfgen:", err)
				os.Exit(1)
			}
			fmt.Println(string(data))
		case "summary":
			path, eft := dag.CriticalPath(w, est)
			shape := dag.ShapeOf(w)
			fmt.Printf("%s: %d tasks, %d edges, total load %.0f MI, eft %.0f s, critical path %d tasks, depth %d, max width %d, parallelism %.1f\n",
				w.Name, w.Len(), w.Edges(), w.TotalLoad(), eft, len(path),
				shape.Depth, shape.MaxWidth, shape.Parallelism)
		default:
			fmt.Fprintf(os.Stderr, "wfgen: unknown format %q\n", *format)
			os.Exit(1)
		}
	}
}
