package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"testing"
)

func runWfgen(args ...string) (code int, stdout, stderr string) {
	var out, errBuf bytes.Buffer
	code = cliMain(args, &out, &errBuf)
	return code, out.String(), errBuf.String()
}

func TestFormatDot(t *testing.T) {
	code, stdout, stderr := runWfgen("-family", "montage", "-scale", "4", "-format", "dot")
	if code != 0 {
		t.Fatalf("exit %d, stderr:\n%s", code, stderr)
	}
	for _, frag := range []string{"digraph", "->"} {
		if !strings.Contains(stdout, frag) {
			t.Fatalf("DOT output missing %q:\n%s", frag, stdout)
		}
	}
}

func TestFormatJSON(t *testing.T) {
	code, stdout, stderr := runWfgen("-family", "pipeline", "-scale", "3", "-format", "json")
	if code != 0 {
		t.Fatalf("exit %d, stderr:\n%s", code, stderr)
	}
	if !json.Valid([]byte(stdout)) {
		t.Fatalf("output is not valid JSON:\n%s", stdout)
	}
}

func TestFormatSummaryDeterministicAndEstimateFlags(t *testing.T) {
	args := []string{"-family", "random", "-count", "3", "-seed", "9", "-format", "summary"}
	code, first, stderr := runWfgen(args...)
	if code != 0 {
		t.Fatalf("exit %d, stderr:\n%s", code, stderr)
	}
	if got := strings.Count(first, "random-"); got != 3 {
		t.Fatalf("%d summaries, want 3:\n%s", got, first)
	}
	_, second, _ := runWfgen(args...)
	if first != second {
		t.Fatal("same seed produced different summaries")
	}
	// Doubling the capacity halves execution-time estimates, so the eft
	// column must move: -mips/-bw are live, not decorative.
	_, faster, _ := runWfgen(append(args, "-mips", "12.4")...)
	if first == faster {
		t.Fatal("-mips did not change the summary estimates")
	}
}

func TestFormatScheduleSynthetic(t *testing.T) {
	code, stdout, stderr := runWfgen("-count", "5", "-seed", "3", "-format", "schedule", "-arrival", "poisson:120")
	if code != 0 {
		t.Fatalf("exit %d, stderr:\n%s", code, stderr)
	}
	if !strings.Contains(stdout, "poisson:120/h") {
		t.Fatalf("schedule header missing the process:\n%s", stdout)
	}
	var rows int
	prev := -1.0
	for _, line := range strings.Split(strings.TrimSpace(stdout), "\n") {
		if strings.HasPrefix(line, "#") {
			continue
		}
		rows++
		fields := strings.Fields(line)
		at, err := strconv.ParseFloat(fields[0], 64)
		if err != nil {
			t.Fatalf("bad submit time %q: %v", fields[0], err)
		}
		if at < prev {
			t.Fatalf("schedule not sorted at %q", line)
		}
		prev = at
	}
	if rows != 5 {
		t.Fatalf("%d schedule rows, want 5", rows)
	}
}

func TestFormatScheduleTraceDefaultsCountToTraceLength(t *testing.T) {
	code, stdout, stderr := runWfgen("-format", "schedule", "-arrival", "trace", "-trace", "sample")
	if code != 0 {
		t.Fatalf("exit %d, stderr:\n%s", code, stderr)
	}
	if !strings.Contains(stdout, "42 workflows") {
		t.Fatalf("trace schedule should default to the 42 sample jobs:\n%s", stdout)
	}
	// An explicit -count overrides the default.
	_, short, _ := runWfgen("-format", "schedule", "-arrival", "trace", "-count", "3")
	if !strings.Contains(short, "3 workflows") {
		t.Fatalf("-count not honored under trace replay:\n%s", short)
	}
}

// TestScheduleTraceRowsUseReplayScaling pins the schedule/replay
// agreement: under a trace, the printed load column is the replay rule's
// runtime x procs x mips, not the raw generator draw.
func TestScheduleTraceRowsUseReplayScaling(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "t.swf")
	// One job: 100 s x 2 procs at 10 MIPS -> exactly 2000 MI.
	if err := os.WriteFile(path, []byte("1 0 -1 100 2\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	code, stdout, stderr := runWfgen("-format", "schedule", "-arrival", "trace", "-trace", path, "-mips", "10")
	if code != 0 {
		t.Fatalf("exit %d, stderr:\n%s", code, stderr)
	}
	var rows []string
	for _, line := range strings.Split(strings.TrimSpace(stdout), "\n") {
		if !strings.HasPrefix(line, "#") {
			rows = append(rows, line)
		}
	}
	if len(rows) != 1 {
		t.Fatalf("rows %v, want 1", rows)
	}
	fields := strings.Fields(rows[0])
	if load := fields[3]; load != "2000" {
		t.Fatalf("load column %q, want 2000 (runtime x procs x mips)", load)
	}
	// -trace-scale compresses the printed submit times.
	if err := os.WriteFile(path, []byte("1 0 -1 100 2\n2 1000 -1 50 1\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	_, scaled, _ := runWfgen("-format", "schedule", "-arrival", "trace", "-trace", path, "-trace-scale", "0.5")
	if !strings.Contains(scaled, "500.0") {
		t.Fatalf("-trace-scale not applied to submit times:\n%s", scaled)
	}
}

// TestArrivalFlagsValidatedForEveryFormat pins the eager-validation
// contract: typos fail (exit non-zero) even when the format ignores the
// flags, and valid-but-ignored flags warn on stderr.
func TestArrivalFlagsValidatedForEveryFormat(t *testing.T) {
	if code, _, _ := runWfgen("-format", "summary", "-arrival", "poisson:zero"); code == 0 {
		t.Fatal("malformed -arrival accepted under -format summary")
	}
	if code, _, _ := runWfgen("-format", "summary", "-arrival", "trace", "-trace", "/nonexistent-dir/t.swf"); code == 0 {
		t.Fatal("missing trace accepted under -format summary")
	}
	code, _, stderr := runWfgen("-format", "summary", "-arrival", "poisson:10")
	if code != 0 {
		t.Fatalf("valid ignored flag failed (exit %d):\n%s", code, stderr)
	}
	if !strings.Contains(stderr, "only affect -format schedule") {
		t.Fatalf("no ignored-flag warning:\n%s", stderr)
	}
}

func TestFormatScheduleTraceFile(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "t.swf")
	if err := os.WriteFile(path, []byte("1 0 -1 60 1\n2 30 -1 90 2\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	code, stdout, stderr := runWfgen("-format", "schedule", "-arrival", "trace", "-trace", path)
	if code != 0 {
		t.Fatalf("exit %d, stderr:\n%s", code, stderr)
	}
	if !strings.Contains(stdout, "2 workflows") {
		t.Fatalf("file trace schedule:\n%s", stdout)
	}
}

func TestErrorPaths(t *testing.T) {
	cases := []struct {
		name string
		args []string
	}{
		{"unknown flag", []string{"-definitely-not-a-flag"}},
		{"stray positional", []string{"dot"}},
		{"unknown family", []string{"-family", "fractal"}},
		{"unknown format", []string{"-format", "yaml"}},
		{"non-positive mips", []string{"-mips", "0"}},
		{"non-positive bw", []string{"-bw", "-3"}},
		{"bad arrival spec", []string{"-format", "schedule", "-arrival", "poisson:zero"}},
		{"trace without trace arrival", []string{"-format", "schedule", "-arrival", "poisson:10", "-trace", "sample"}},
		{"missing trace file", []string{"-format", "schedule", "-arrival", "trace", "-trace", "/nonexistent-dir/t.swf"}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			code, _, stderr := runWfgen(tc.args...)
			if code == 0 {
				t.Fatalf("args %v exited 0", tc.args)
			}
			if stderr == "" {
				t.Fatalf("args %v failed silently", tc.args)
			}
		})
	}
}
