package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/workload/mining"
)

// TestFitEmitsDeterministicArtifact: two -fit runs over the same trace
// print byte-identical model JSON (the PR's acceptance criterion), the
// artifact decodes cleanly, and its embedded goodness of fit puts the
// synthesized interarrival mean and CV within 10% of the source.
func TestFitEmitsDeterministicArtifact(t *testing.T) {
	code, first, stderr := runWfgen("-fit", "sample")
	if code != 0 {
		t.Fatalf("exit %d, stderr:\n%s", code, stderr)
	}
	if !strings.Contains(stderr, "gof:") {
		t.Fatalf("no goodness-of-fit report on stderr:\n%s", stderr)
	}
	code, second, _ := runWfgen("-fit", "sample")
	if code != 0 {
		t.Fatal("second fit failed")
	}
	if first != second {
		t.Fatalf("two fits of the same trace differ:\n%s\n---\n%s", first, second)
	}
	m, err := mining.Decode([]byte(first))
	if err != nil {
		t.Fatalf("emitted artifact does not decode: %v", err)
	}
	if m.GoF.MeanErr > 0.10 || m.GoF.CVErr > 0.10 {
		t.Fatalf("synthesized moments off by mean %v / cv %v, want <= 10%%", m.GoF.MeanErr, m.GoF.CVErr)
	}
}

// TestFitTraceScaleIgnored pins the trace-scale ordering rule: fitting is
// always on unscaled times, so -trace-scale must not change the artifact
// (it warns instead), while -model -trace-scale compresses the
// synthesized schedule.
func TestFitTraceScaleIgnored(t *testing.T) {
	_, plain, _ := runWfgen("-fit", "sample")
	code, scaled, stderr := runWfgen("-fit", "sample", "-trace-scale", "0.5")
	if code != 0 {
		t.Fatalf("exit %d, stderr:\n%s", code, stderr)
	}
	if plain != scaled {
		t.Fatal("-trace-scale changed the fitted artifact; fits must be on unscaled times")
	}
	if !strings.Contains(stderr, "ignored at fit time") {
		t.Fatalf("no ignored -trace-scale warning:\n%s", stderr)
	}

	model := writeModel(t)
	_, full, _ := runWfgen("-format", "schedule", "-model", model, "-count", "10")
	code, half, stderr := runWfgen("-format", "schedule", "-model", model, "-count", "10", "-trace-scale", "0.5")
	if code != 0 {
		t.Fatalf("exit %d, stderr:\n%s", code, stderr)
	}
	lastSubmit := func(out string) string {
		lines := strings.Split(strings.TrimSpace(out), "\n")
		return strings.Fields(lines[len(lines)-1])[0]
	}
	fullLast, halfLast := lastSubmit(full), lastSubmit(half)
	if fullLast == halfLast {
		t.Fatalf("-trace-scale 0.5 left the synthesized schedule unchanged (last submit %s)", fullLast)
	}
}

// TestModelSchedule: -model drives -format schedule through the trace
// machinery, the count defaults to the model's fitted job count, and
// -count rescales the synthesis.
func TestModelSchedule(t *testing.T) {
	model := writeModel(t)
	code, stdout, stderr := runWfgen("-format", "schedule", "-model", model)
	if code != 0 {
		t.Fatalf("exit %d, stderr:\n%s", code, stderr)
	}
	if !strings.Contains(stdout, "42 workflows") {
		t.Fatalf("default count is not the model's 42 jobs:\n%s", stdout)
	}
	code, stdout, stderr = runWfgen("-format", "schedule", "-model", model, "-count", "100")
	if code != 0 {
		t.Fatalf("exit %d, stderr:\n%s", code, stderr)
	}
	if !strings.Contains(stdout, "100 workflows") {
		t.Fatalf("-count 100 did not rescale the synthesis:\n%s", stdout)
	}
	// Deterministic: same model, same seed, same schedule.
	_, again, _ := runWfgen("-format", "schedule", "-model", model, "-count", "100")
	if stdout != again {
		t.Fatal("two identical -model runs printed different schedules")
	}
}

// TestModelFlagRules: the -fit / -model combination rules exit non-zero
// with a message.
func TestModelFlagRules(t *testing.T) {
	model := writeModel(t)
	cases := []struct {
		name string
		args []string
	}{
		{"fit with model", []string{"-fit", "sample", "-model", model}},
		{"fit with arrival", []string{"-fit", "sample", "-arrival", "poisson:10"}},
		{"fit with trace", []string{"-fit", "sample", "-trace", "sample"}},
		{"model with explicit arrival", []string{"-format", "schedule", "-model", model, "-arrival", "poisson:10"}},
		{"model with trace", []string{"-format", "schedule", "-model", model, "-trace", "sample"}},
		{"missing model file", []string{"-format", "schedule", "-model", "/nonexistent-dir/m.json"}},
		{"fit missing trace file", []string{"-fit", "/nonexistent-dir/t.swf"}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			code, _, stderr := runWfgen(tc.args...)
			if code == 0 {
				t.Fatalf("args %v exited 0", tc.args)
			}
			if stderr == "" {
				t.Fatalf("args %v failed silently", tc.args)
			}
		})
	}
}

// writeModel fits the bundled sample trace and writes the artifact to a
// temp file, returning its path.
func writeModel(t *testing.T) string {
	t.Helper()
	code, artifact, stderr := runWfgen("-fit", "sample")
	if code != 0 {
		t.Fatalf("fit failed (exit %d):\n%s", code, stderr)
	}
	path := filepath.Join(t.TempDir(), "model.json")
	if err := os.WriteFile(path, []byte(artifact), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}
