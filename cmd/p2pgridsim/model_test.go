package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/workload/mining"
	"repro/internal/workload/traces"
)

// sampleModelFile fits the bundled sample trace and writes the artifact
// to a temp file.
func sampleModelFile(t *testing.T) string {
	t.Helper()
	m, err := mining.Fit(traces.Sample())
	if err != nil {
		t.Fatal(err)
	}
	data, err := mining.Encode(m)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "model.json")
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

// TestModelSingleRun: -model drives a single run through the trace-replay
// machinery; -synth picks the workload size; repeated runs are identical.
func TestModelSingleRun(t *testing.T) {
	model := sampleModelFile(t)
	code, stdout, stderr := runCLI("-experiment", "single", "-scale", "tiny", "-model", model, "-synth", "20")
	if code != 0 {
		t.Fatalf("exit %d, stderr:\n%s", code, stderr)
	}
	if !strings.Contains(stdout, "20 workflows") {
		t.Fatalf("-synth 20 should submit 20 workflows:\n%s", stdout)
	}
	_, again, _ := runCLI("-experiment", "single", "-scale", "tiny", "-model", model, "-synth", "20")
	if stdout != again {
		t.Fatal("two identical -model runs differ")
	}

	// Without -synth the model's own fitted job count is the workload.
	code, stdout, stderr = runCLI("-experiment", "single", "-scale", "tiny", "-model", model)
	if code != 0 {
		t.Fatalf("exit %d, stderr:\n%s", code, stderr)
	}
	if !strings.Contains(stdout, "42 workflows") {
		t.Fatalf("default synthesis count should be the model's 42 jobs:\n%s", stdout)
	}
}

// TestModelSweepCell: -model adds a labeled arrival case to a sweep, and
// the cell label names the model source and scale so artifacts stay
// self-describing.
func TestModelSweepCell(t *testing.T) {
	model := sampleModelFile(t)
	code, stdout, stderr := runCLI("-experiment", "sweep", "-scale", "tiny", "-axes", "", "-reps", "1", "-model", model, "-synth", "15")
	if code != 0 {
		t.Fatalf("exit %d, stderr:\n%s", code, stderr)
	}
	if !strings.Contains(stdout, `"arrival": "trace:model:sample.swf:n15"`) {
		t.Fatalf("sweep JSON missing the model cell label:\n%s", stdout)
	}
	_, again, _ := runCLI("-experiment", "sweep", "-scale", "tiny", "-axes", "", "-reps", "1", "-model", model, "-synth", "15")
	if stdout != again {
		t.Fatal("model-driven sweep is not deterministic")
	}
}

// TestModelFlagRules: combination and validation errors exit 2 before any
// simulation runs.
func TestModelFlagRules(t *testing.T) {
	model := sampleModelFile(t)
	cases := []struct {
		name    string
		args    []string
		wantErr string
	}{
		{"synth without model", []string{"-experiment", "single", "-scale", "tiny", "-synth", "10"}, "-synth needs -model"},
		{"model with arrival", []string{"-experiment", "single", "-scale", "tiny", "-model", model, "-arrival", "poisson:30"}, "combines with neither"},
		{"model with trace", []string{"-experiment", "single", "-scale", "tiny", "-model", model, "-trace", "sample"}, "combines with neither"},
		{"missing model file", []string{"-experiment", "single", "-scale", "tiny", "-model", "/nonexistent-dir/m.json"}, "m.json"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			code, _, stderr := runCLI(tc.args...)
			if code != 2 {
				t.Fatalf("exit %d, want 2; stderr:\n%s", code, stderr)
			}
			if !strings.Contains(stderr, tc.wantErr) {
				t.Fatalf("stderr missing %q:\n%s", tc.wantErr, stderr)
			}
		})
	}

	// -model on an experiment that ignores it warns but runs.
	code, _, stderr := runCLI("-experiment", "table1", "-scale", "tiny", "-model", model)
	if code != 0 || !strings.Contains(stderr, "only apply to single, sweep and arrival") {
		t.Fatalf("ignored -model warning missing (exit %d):\n%s", code, stderr)
	}
}
