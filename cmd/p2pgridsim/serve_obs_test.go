package main

import (
	"io"
	"net"
	"net/http"
	"strings"
	"syscall"
	"testing"
	"time"
)

// startDaemon launches runCLI(-serve …) on a free port and returns the
// base URL plus a shutdown func that SIGTERMs the process-wide handler
// and awaits the clean exit.
func startDaemon(t *testing.T, extra ...string) (string, func()) {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := ln.Addr().String()
	ln.Close()

	done := make(chan int, 1)
	go func() {
		code, _, stderr := runCLI(append([]string{"-serve", addr, "-scale", "tiny", "-seed", "7"}, extra...)...)
		if code != 0 {
			t.Errorf("daemon exit %d, stderr:\n%s", code, stderr)
		}
		done <- code
	}()
	base := "http://" + addr
	waitUp(t, base)
	return base, func() {
		if err := syscall.Kill(syscall.Getpid(), syscall.SIGTERM); err != nil {
			t.Fatalf("kill: %v", err)
		}
		select {
		case <-done:
		case <-time.After(30 * time.Second):
			t.Fatal("daemon did not drain within 30s of SIGTERM")
		}
	}
}

// TestServePprofGating pins the -pprof contract: the profiling surface is
// reachable exactly when asked for and 404s otherwise.
func TestServePprofGating(t *testing.T) {
	base, stop := startDaemon(t)
	resp, err := http.Get(base + "/debug/pprof/")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("pprof without -pprof: status %d, want 404", resp.StatusCode)
	}
	stop()

	base, stop = startDaemon(t, "-pprof")
	defer stop()
	resp, err = http.Get(base + "/debug/pprof/")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || !strings.Contains(string(body), "goroutine") {
		t.Fatalf("pprof index with -pprof: status %d\n%.300s", resp.StatusCode, body)
	}
	// The /v1 API still works behind the outer mux.
	resp, err = http.Get(base + "/v1/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz behind pprof mux: status %d", resp.StatusCode)
	}
}

// TestServeMetricsHistograms asserts the daemon's scrape carries the grid
// histogram families end to end: drive a workflow over HTTP, advance the
// clock, and require populated _bucket/_sum/_count series.
func TestServeMetricsHistograms(t *testing.T) {
	base, stop := startDaemon(t, "-price", "1")
	defer stop()
	resp, err := http.Post(base+"/v1/workflows", "application/json", strings.NewReader(`{"name":"hist"}`))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("submit: status %d", resp.StatusCode)
	}
	resp, err = http.Post(base+"/v1/clock/advance", "application/json", strings.NewReader(`{"by_seconds": 86400}`))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	resp, err = http.Get(base + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	scrape := string(body)
	for _, fam := range []string{
		"p2pgrid_workflow_completion_seconds",
		"p2pgrid_task_queue_wait_seconds",
		"p2pgrid_task_exec_seconds",
		"p2pgrid_task_transfer_seconds",
	} {
		if !strings.Contains(scrape, "# TYPE "+fam+" histogram") ||
			!strings.Contains(scrape, fam+"_bucket{le=\"+Inf\"}") ||
			!strings.Contains(scrape, fam+"_sum ") ||
			!strings.Contains(scrape, fam+"_count ") {
			t.Fatalf("family %s incomplete in scrape:\n%s", fam, scrape)
		}
		if strings.Contains(scrape, fam+"_count 0\n") {
			t.Fatalf("family %s empty after a completed workflow:\n%s", fam, scrape)
		}
	}
}
