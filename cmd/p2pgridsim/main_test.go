package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"repro/internal/experiments"
)

// runCLI invokes cliMain with captured output.
func runCLI(args ...string) (code int, stdout, stderr string) {
	var out, errBuf bytes.Buffer
	code = cliMain(args, &out, &errBuf)
	return code, out.String(), errBuf.String()
}

// TestErrorPathsExitNonZero pins the exit-code contract: every bad input
// must fail loudly. The positional-argument case used to silently run the
// default experiment and exit 0.
func TestErrorPathsExitNonZero(t *testing.T) {
	cases := []struct {
		name string
		args []string
	}{
		{"unknown experiment", []string{"-experiment", "bogus", "-scale", "tiny"}},
		{"unknown scale", []string{"-experiment", "table1", "-scale", "galactic"}},
		{"unknown algorithm", []string{"-experiment", "single", "-algo", "nope", "-scale", "tiny"}},
		{"unknown flag", []string{"-definitely-not-a-flag"}},
		{"stray positional argument", []string{"sweep"}},
		{"positional after flags", []string{"-scale", "tiny", "fig4-6"}},
		{"non-positive reps", []string{"-experiment", "table1", "-reps", "0"}},
		{"negative maxlf on fig7-8", []string{"-experiment", "fig7-8", "-scale", "tiny", "-maxlf", "-1"}},
		{"negative maxlf on sweep lf axis", []string{"-experiment", "sweep", "-scale", "tiny", "-axes", "lf", "-maxlf", "0"}},
		{"unknown sweep axis", []string{"-experiment", "sweep", "-scale", "tiny", "-axes", "algo,warp"}},
		{"unwritable out", []string{"-experiment", "sweep", "-scale", "tiny", "-axes", "", "-out", "/nonexistent-dir/x.json"}},
		{"malformed shard", []string{"-experiment", "sweep", "-scale", "tiny", "-axes", "", "-shard", "two/three"}},
		{"shard with trailing garbage", []string{"-experiment", "sweep", "-scale", "tiny", "-axes", "", "-shard", "0/2/4"}},
		{"shard with suffixed count", []string{"-experiment", "sweep", "-scale", "tiny", "-axes", "", "-shard", "1/10x"}},
		{"shard with artifacts", []string{"-experiment", "sweep", "-scale", "tiny", "-axes", "", "-shard", "0/2", "-artifacts", "arts"}},
		{"merge with cache", []string{"-experiment", "sweep", "-merge", "a.json", "-cache", "cellcache"}},
		{"shard index out of range", []string{"-experiment", "sweep", "-scale", "tiny", "-axes", "", "-shard", "2/2"}},
		{"shard with precision", []string{"-experiment", "sweep", "-scale", "tiny", "-axes", "", "-shard", "0/2", "-precision", "0.1"}},
		{"merge with shard", []string{"-experiment", "sweep", "-merge", "a.json", "-shard", "0/2"}},
		{"merge without files", []string{"-experiment", "sweep", "-merge", " , "}},
		{"merge unreadable file", []string{"-experiment", "sweep", "-merge", "/nonexistent-dir/shard.json"}},
		{"negative precision", []string{"-experiment", "sweep", "-scale", "tiny", "-axes", "", "-precision", "-0.5"}},
		{"malformed arrival spec", []string{"-experiment", "single", "-scale", "tiny", "-arrival", "poisson"}},
		{"malformed arrival on non-consuming experiment", []string{"-arrival", "poisson"}},
		{"missing trace on non-consuming experiment", []string{"-trace", "/nonexistent-dir/t.swf"}},
		{"unknown arrival kind", []string{"-experiment", "single", "-scale", "tiny", "-arrival", "gamma:3"}},
		{"missing trace file", []string{"-experiment", "single", "-scale", "tiny", "-trace", "/nonexistent-dir/t.swf"}},
		{"trace with non-trace arrival", []string{"-experiment", "single", "-scale", "tiny", "-arrival", "poisson:10", "-trace", "sample"}},
		{"arrival with arrival axis", []string{"-experiment", "sweep", "-scale", "tiny", "-axes", "arrival", "-arrival", "poisson:10"}},
		{"arrival experiment with -arrival", []string{"-experiment", "arrival", "-scale", "tiny", "-arrival", "poisson:10"}},
		{"negative trace-scale", []string{"-experiment", "single", "-scale", "tiny", "-trace", "sample", "-trace-scale", "-2"}},
		{"trace-scale without trace", []string{"-experiment", "single", "-scale", "tiny", "-trace-scale", "0.5"}},
		{"cache-gc without cache", []string{"-cache-gc", "-cache-budget", "1"}},
		{"cache-gc without bounds", []string{"-cache-gc", "-cache", "somewhere"}},
		{"cache-gc negative budget", []string{"-cache-gc", "-cache", "somewhere", "-cache-budget", "-2"}},
		{"worker on missing dir", []string{"-worker", "/nonexistent-dir/work"}},
		{"worker with coordinate", []string{"-worker", "w", "-coordinate", "c"}},
		{"sleep-per-job without worker", []string{"-experiment", "table1", "-sleep-per-job", "1ms"}},
		{"negative sleep-per-job", []string{"-worker", "w", "-sleep-per-job", "-1s"}},
		{"lease-ttl without coordinate", []string{"-worker", "w", "-lease-ttl", "5s"}},
		{"non-positive lease-ttl", []string{"-experiment", "sweep", "-coordinate", "c", "-lease-ttl", "0s"}},
		{"coordinate with shard", []string{"-experiment", "sweep", "-scale", "tiny", "-axes", "", "-coordinate", "c", "-shard", "0/2"}},
		{"coordinate with precision", []string{"-experiment", "sweep", "-scale", "tiny", "-axes", "", "-coordinate", "c", "-precision", "0.1"}},
		{"coordinate with merge", []string{"-experiment", "sweep", "-merge", "a.json", "-coordinate", "c"}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			code, _, stderr := runCLI(tc.args...)
			if code == 0 {
				t.Fatalf("args %v exited 0; stderr:\n%s", tc.args, stderr)
			}
			if stderr == "" {
				t.Fatalf("args %v failed silently", tc.args)
			}
		})
	}
}

func TestTable1Succeeds(t *testing.T) {
	code, stdout, stderr := runCLI("-experiment", "table1", "-scale", "tiny")
	if code != 0 {
		t.Fatalf("exit %d, stderr:\n%s", code, stderr)
	}
	if !strings.Contains(stdout, "Table I") {
		t.Fatalf("missing table:\n%s", stdout)
	}
}

// TestSweepJSONDeterministic is the acceptance check of the sweep mode: two
// identical invocations must produce byte-identical JSON with interval
// estimates per cell.
func TestSweepJSONDeterministic(t *testing.T) {
	args := []string{"-experiment", "sweep", "-scale", "tiny", "-reps", "2", "-axes", ""}
	code, first, stderr := runCLI(args...)
	if code != 0 {
		t.Fatalf("exit %d, stderr:\n%s", code, stderr)
	}
	if !strings.Contains(stderr, "sweep: ") {
		t.Fatalf("no progress streamed to stderr:\n%s", stderr)
	}
	code, second, _ := runCLI(args...)
	if code != 0 {
		t.Fatal("second invocation failed")
	}
	if first != second {
		t.Fatalf("sweep JSON not byte-identical:\n%s\nvs\n%s", first, second)
	}
	var doc struct {
		Schema string `json:"schema"`
		Reps   int    `json:"reps"`
		Cells  []struct {
			Algo      string `json:"algo"`
			Aggregate struct {
				ACT struct {
					N    int     `json:"n"`
					Mean float64 `json:"mean"`
					Std  float64 `json:"std"`
					CI95 float64 `json:"ci95"`
				} `json:"act"`
			} `json:"aggregate"`
		} `json:"cells"`
	}
	if err := json.Unmarshal([]byte(first), &doc); err != nil {
		t.Fatalf("stdout is not valid JSON: %v", err)
	}
	if doc.Schema != "p2pgridsim/sweep/v1" || doc.Reps != 2 {
		t.Fatalf("unexpected header: schema=%q reps=%d", doc.Schema, doc.Reps)
	}
	if len(doc.Cells) != 1 || doc.Cells[0].Algo != "DSMF" {
		t.Fatalf("cells: %+v", doc.Cells)
	}
	act := doc.Cells[0].Aggregate.ACT
	if act.N != 2 || act.Mean <= 0 || act.CI95 <= 0 {
		t.Fatalf("degenerate ACT estimate: %+v", act)
	}
}

func TestSweepOutFileAndArtifacts(t *testing.T) {
	dir := t.TempDir()
	outFile := filepath.Join(dir, "sweep-tiny.json")
	code, stdout, stderr := runCLI(
		"-experiment", "sweep", "-scale", "tiny", "-reps", "1", "-axes", "",
		"-out", outFile, "-artifacts", dir)
	if code != 0 {
		t.Fatalf("exit %d, stderr:\n%s", code, stderr)
	}
	data, err := os.ReadFile(outFile)
	if err != nil {
		t.Fatalf("-out file missing: %v", err)
	}
	if !json.Valid(data) {
		t.Fatal("-out file is not valid JSON")
	}
	if !strings.Contains(stdout, "Sweep") {
		t.Fatalf("summary table missing when -out is set:\n%s", stdout)
	}
	for _, base := range []string{"sweep.json", "sweep.csv"} {
		if _, err := os.Stat(filepath.Join(dir, base)); err != nil {
			t.Errorf("artifact %s missing: %v", base, err)
		}
	}
}

// TestSweepShardMergeMatchesSingleHost drives the distributed-sweep recipe
// end to end through the CLI: two shards, merged, byte-identical to the
// single-host JSON.
func TestSweepShardMergeMatchesSingleHost(t *testing.T) {
	dir := t.TempDir()
	base := []string{"-experiment", "sweep", "-scale", "tiny", "-reps", "2", "-axes", ""}
	code, single, stderr := runCLI(base...)
	if code != 0 {
		t.Fatalf("single-host run: exit %d, stderr:\n%s", code, stderr)
	}
	s0, s1 := filepath.Join(dir, "s0.json"), filepath.Join(dir, "s1.json")
	for i, out := range []string{s0, s1} {
		args := append(append([]string{}, base...), "-shard", fmt.Sprintf("%d/2", i), "-out", out)
		code, _, stderr := runCLI(args...)
		if code != 0 {
			t.Fatalf("shard %d: exit %d, stderr:\n%s", i, code, stderr)
		}
		if !strings.Contains(stderr, fmt.Sprintf("shard %d/2", i)) {
			t.Fatalf("shard %d: no range note on stderr:\n%s", i, stderr)
		}
	}
	code, merged, stderr := runCLI("-experiment", "sweep", "-merge", s0+","+s1)
	if code != 0 {
		t.Fatalf("merge: exit %d, stderr:\n%s", code, stderr)
	}
	if merged != single {
		t.Fatalf("merged JSON differs from single-host run:\n%s\nvs\n%s", merged, single)
	}
	// Merging a shard file against itself must fail (overlap).
	if code, _, _ := runCLI("-experiment", "sweep", "-merge", s0+","+s0); code == 0 {
		t.Fatal("overlapping merge exited 0")
	}
}

// TestSweepCacheWarmStart checks the -cache flag: the second run restores
// every cell from disk and its stdout JSON stays byte-identical.
func TestSweepCacheWarmStart(t *testing.T) {
	cacheDir := filepath.Join(t.TempDir(), "cells")
	args := []string{"-experiment", "sweep", "-scale", "tiny", "-reps", "2", "-axes", "", "-cache", cacheDir}
	code, cold, stderr := runCLI(args...)
	if code != 0 {
		t.Fatalf("cold run: exit %d, stderr:\n%s", code, stderr)
	}
	entries, err := filepath.Glob(filepath.Join(cacheDir, "*", "*.json"))
	if err != nil || len(entries) == 0 {
		t.Fatalf("no cache entries written (err=%v)", err)
	}
	code, warm, _ := runCLI(args...)
	if code != 0 {
		t.Fatal("warm run failed")
	}
	if warm != cold {
		t.Fatalf("warm JSON differs from cold:\n%s\nvs\n%s", warm, cold)
	}
}

// TestSweepAdaptivePrecision checks the -precision flag: a loose target
// stops every cell at the 3-replication floor (below the -reps cap) and
// reports the ragged shape.
func TestSweepAdaptivePrecision(t *testing.T) {
	code, stdout, stderr := runCLI(
		"-experiment", "sweep", "-scale", "tiny", "-reps", "6", "-axes", "", "-precision", "100")
	if code != 0 {
		t.Fatalf("exit %d, stderr:\n%s", code, stderr)
	}
	if !strings.Contains(stderr, "adaptive: 3 replications across 1 cells (per-cell 3..3)") {
		t.Fatalf("no adaptive note on stderr:\n%s", stderr)
	}
	var doc struct {
		Reps int `json:"reps"`
	}
	if err := json.Unmarshal([]byte(stdout), &doc); err != nil {
		t.Fatalf("stdout not JSON: %v", err)
	}
	if doc.Reps != 3 {
		t.Fatalf("adaptive JSON reports %d reps, want 3", doc.Reps)
	}
}

// TestArrivalExperimentAndFlags drives the arrival subsystem through the
// CLI: the arrival figure (with the bundled trace column), a single run
// under a Poisson process, and a trace-replay sweep cell.
func TestArrivalExperimentAndFlags(t *testing.T) {
	code, stdout, stderr := runCLI("-experiment", "arrival", "-scale", "tiny", "-reps", "1", "-trace", "sample")
	if code != 0 {
		t.Fatalf("exit %d, stderr:\n%s", code, stderr)
	}
	for _, frag := range []string{"arrival intensity", "batch", "poisson:", "trace:sample.swf", "DSMF"} {
		if !strings.Contains(stdout, frag) {
			t.Fatalf("arrival figure missing %q:\n%s", frag, stdout)
		}
	}

	code, stdout, stderr = runCLI("-experiment", "single", "-scale", "tiny", "-arrival", "poisson:30")
	if code != 0 {
		t.Fatalf("single with arrival: exit %d, stderr:\n%s", code, stderr)
	}
	if !strings.Contains(stdout, "DSMF at tiny scale") {
		t.Fatalf("single output:\n%s", stdout)
	}

	code, stdout, stderr = runCLI("-experiment", "single", "-scale", "tiny", "-arrival", "trace", "-trace-scale", "0.5")
	if code != 0 {
		t.Fatalf("single with trace replay: exit %d, stderr:\n%s", code, stderr)
	}
	if !strings.Contains(stdout, "42 workflows") {
		t.Fatalf("trace replay should submit one workflow per sample job:\n%s", stdout)
	}

	// A process far slower than the horizon leaves an unsubmitted tail,
	// and the single-run output reports it instead of hiding it.
	code, stdout, stderr = runCLI("-experiment", "single", "-scale", "tiny", "-arrival", "poisson:1")
	if code != 0 {
		t.Fatalf("slow arrivals: exit %d, stderr:\n%s", code, stderr)
	}
	if !strings.Contains(stdout, "arrived after the horizon") {
		t.Fatalf("unsubmitted tail not reported:\n%s", stdout)
	}

	// Valid flags on an experiment that ignores them warn but still run.
	code, _, stderr = runCLI("-experiment", "table1", "-scale", "tiny", "-arrival", "poisson:10")
	if code != 0 || !strings.Contains(stderr, "only apply to single, sweep and arrival") {
		t.Fatalf("ignored-flag warning missing (exit %d):\n%s", code, stderr)
	}

	// A sweep pinned to one arrival case labels its cells with it.
	code, stdout, stderr = runCLI("-experiment", "sweep", "-scale", "tiny", "-axes", "", "-arrival", "poisson:30")
	if code != 0 {
		t.Fatalf("sweep with arrival: exit %d, stderr:\n%s", code, stderr)
	}
	if !strings.Contains(stdout, `"arrival": "poisson:30"`) {
		t.Fatalf("sweep JSON missing arrival label:\n%s", stdout)
	}
}

// TestSweepArrivalAxisDeterministic pins the CLI arrival axis: two
// invocations are byte-identical and the JSON carries one cell per rung
// of the intensity ladder plus the batch endpoint.
func TestSweepArrivalAxisDeterministic(t *testing.T) {
	args := []string{"-experiment", "sweep", "-scale", "tiny", "-reps", "1", "-axes", "arrival"}
	code, first, stderr := runCLI(args...)
	if code != 0 {
		t.Fatalf("exit %d, stderr:\n%s", code, stderr)
	}
	code, second, _ := runCLI(args...)
	if code != 0 || first != second {
		t.Fatalf("arrival-axis sweep JSON not reproducible (exit %d)", code)
	}
	var doc struct {
		Cells []struct {
			Arrival string `json:"arrival"`
		} `json:"cells"`
	}
	if err := json.Unmarshal([]byte(first), &doc); err != nil {
		t.Fatal(err)
	}
	if len(doc.Cells) != 5 {
		t.Fatalf("%d cells, want 5 (4 poisson rungs + batch)", len(doc.Cells))
	}
	if doc.Cells[len(doc.Cells)-1].Arrival != "" {
		t.Fatalf("last cell should be the batch endpoint, got %q", doc.Cells[len(doc.Cells)-1].Arrival)
	}
	if !strings.HasPrefix(doc.Cells[0].Arrival, "poisson:") {
		t.Fatalf("first cell %q not a poisson rung", doc.Cells[0].Arrival)
	}
}

// TestCacheGCFlag drives the -cache-gc pass end to end: populate the cell
// cache via a sweep, then trim it to a tiny budget.
func TestCacheGCFlag(t *testing.T) {
	cacheDir := filepath.Join(t.TempDir(), "cells")
	code, _, stderr := runCLI("-experiment", "sweep", "-scale", "tiny", "-reps", "1", "-axes", "", "-cache", cacheDir)
	if code != 0 {
		t.Fatalf("populate run: exit %d, stderr:\n%s", code, stderr)
	}
	entries, _ := filepath.Glob(filepath.Join(cacheDir, "*", "*.json"))
	if len(entries) == 0 {
		t.Fatal("no cache entries to GC")
	}
	code, stdout, stderr := runCLI("-cache-gc", "-cache", cacheDir, "-cache-budget", "0", "-cache-days", "30")
	if code != 0 {
		t.Fatalf("age-only GC: exit %d, stderr:\n%s", code, stderr)
	}
	if !strings.Contains(stdout, "0 deleted") {
		t.Fatalf("fresh entries should survive a 30-day bound:\n%s", stdout)
	}
	// Backdate every entry two days, then a 1-day bound must clear them.
	past := time.Now().Add(-48 * time.Hour)
	for _, e := range entries {
		if err := os.Chtimes(e, past, past); err != nil {
			t.Fatal(err)
		}
	}
	code, stdout, stderr = runCLI("-cache-gc", "-cache", cacheDir, "-cache-days", "1")
	if code != 0 {
		t.Fatalf("tight GC: exit %d, stderr:\n%s", code, stderr)
	}
	if !strings.Contains(stdout, fmt.Sprintf("%d deleted", len(entries))) {
		t.Fatalf("tight age bound should delete all %d entries:\n%s", len(entries), stdout)
	}
	left, _ := filepath.Glob(filepath.Join(cacheDir, "*", "*.json"))
	if len(left) != 0 {
		t.Fatalf("%d entries survived the tight bound", len(left))
	}
}

func TestSweepSpecFromAxes(t *testing.T) {
	sc, err := experiments.ScaleByName("tiny")
	if err != nil {
		t.Fatal(err)
	}
	spec, err := sweepSpecFromAxes("algo,churn,lf,ccr,arrival", sc, 1, 2, 3)
	if err != nil {
		t.Fatal(err)
	}
	if spec.Algorithms != nil {
		t.Errorf("algo axis should select all algorithms, got %v", spec.Algorithms)
	}
	if len(spec.ChurnFactors) != 5 || len(spec.LoadFactors) != 3 || len(spec.CCRCases) != 4 || len(spec.Arrivals) != 5 {
		t.Errorf("axes wrong: churn=%d lf=%d ccr=%d arrivals=%d",
			len(spec.ChurnFactors), len(spec.LoadFactors), len(spec.CCRCases), len(spec.Arrivals))
	}
	spec, err = sweepSpecFromAxes("scale", sc, 1, 1, 8)
	if err != nil {
		t.Fatal(err)
	}
	if len(spec.Scales) < 2 {
		t.Errorf("scale axis did not expand: %d scales", len(spec.Scales))
	}
	if spec.Algorithms == nil || spec.Algorithms[0] != "DSMF" {
		t.Errorf("without algo axis the sweep should run DSMF alone, got %v", spec.Algorithms)
	}
	if _, err := sweepSpecFromAxes("hyperdrive", sc, 1, 1, 8); err == nil {
		t.Error("unknown axis accepted")
	}
}

// TestCoordinatedSweepCLI drives the work-stealing coordinator end to end
// through the CLI: a coordinator process (which participates as a worker)
// and a concurrent -worker process drain one directory, and the merged
// JSON is byte-identical to the single-host artifact. A late worker on the
// drained directory finds nothing to do, and re-coordinating merges again
// without simulating.
func TestCoordinatedSweepCLI(t *testing.T) {
	tmp := t.TempDir()
	single := filepath.Join(tmp, "single.json")
	merged := filepath.Join(tmp, "merged.json")
	work := filepath.Join(tmp, "work")

	code, _, stderr := runCLI("-experiment", "sweep", "-scale", "tiny", "-reps", "2", "-out", single)
	if code != 0 {
		t.Fatalf("single-host run: exit %d, stderr:\n%s", code, stderr)
	}

	// Initialize the work dir up front so the concurrent worker never
	// races the coordinator's first write.
	sc, err := experiments.ScaleByName("tiny")
	if err != nil {
		t.Fatal(err)
	}
	spec, err := sweepSpecFromAxes("algo", sc, 2010, 2, 8)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := experiments.InitSweepWork(work, spec, time.Hour); err != nil {
		t.Fatal(err)
	}

	workerDone := make(chan struct{})
	var wcode int
	var wout, werr string
	go func() {
		defer close(workerDone)
		wcode, wout, werr = runCLI("-worker", work)
	}()
	code, _, stderr = runCLI("-experiment", "sweep", "-scale", "tiny", "-reps", "2", "-coordinate", work, "-out", merged)
	<-workerDone
	if code != 0 {
		t.Fatalf("coordinate: exit %d, stderr:\n%s", code, stderr)
	}
	if wcode != 0 {
		t.Fatalf("worker: exit %d, stderr:\n%s", wcode, werr)
	}
	if !strings.Contains(wout, "cells completed") {
		t.Fatalf("worker summary missing:\n%s", wout)
	}
	if !strings.Contains(stderr, "coordinate "+work) {
		t.Fatalf("coordinator summary missing:\n%s", stderr)
	}
	singleJSON, err := os.ReadFile(single)
	if err != nil {
		t.Fatal(err)
	}
	mergedJSON, err := os.ReadFile(merged)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(singleJSON, mergedJSON) {
		t.Fatal("coordinated sweep JSON differs from single-host artifact")
	}

	// The drained directory: a late worker completes nothing, and
	// re-coordinating just re-merges.
	code, stdout, _ := runCLI("-worker", work)
	if code != 0 || !strings.Contains(stdout, "0 cells completed") {
		t.Fatalf("late worker: exit %d, stdout:\n%s", code, stdout)
	}
	remerged := filepath.Join(tmp, "remerged.json")
	code, _, _ = runCLI("-experiment", "sweep", "-scale", "tiny", "-reps", "2", "-coordinate", work, "-out", remerged)
	if code != 0 {
		t.Fatalf("re-coordinate failed: %d", code)
	}
	again, err := os.ReadFile(remerged)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(singleJSON, again) {
		t.Fatal("re-coordinated merge differs from single-host artifact")
	}

	// A different spec refuses the used directory.
	code, _, stderr = runCLI("-experiment", "sweep", "-scale", "tiny", "-reps", "3", "-coordinate", work)
	if code == 0 || stderr == "" {
		t.Fatalf("foreign spec accepted by used work dir (exit %d)", code)
	}
}
