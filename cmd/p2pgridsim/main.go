// Command p2pgridsim regenerates the tables and figures of "Dual-Phase
// Just-in-Time Workflow Scheduling in P2P Grid Systems" (Di & Wang, ICPP
// 2010) as text tables/series.
//
// Usage:
//
//	p2pgridsim -experiment <name> [-scale paper|small|tiny] [-seed N]
//
// Experiments:
//
//	table1        print Table I (experimental setting)
//	single        one run of -algo (default DSMF): the unit of every sweep,
//	              handy with -cpuprofile/-memprofile for scale checks
//	fig3          the worked two-workflow example (RPMs, scheduling orders)
//	fig4-6        static comparison of the eight algorithms (three figures)
//	fcfs          Section IV.B second-phase-vs-FCFS ablation
//	fcfs-rep      the same ablation replicated over 3 seeds (mean ± std)
//	fig7-8        load factor sweep (ACT and AE tables)
//	fig9-10       CCR sweep (ACT and AE tables)
//	fig11         scalability sweep (gossip space bound, AE, ACT)
//	fig12-14      churn sweep (throughput/ACT/AE series per dynamic factor)
//	reschedule    churn with the failed-task rescheduling extension
//	oracle        DSMF information ablation (gossip vs oracle views)
//	planners      full-ahead planner shootout (HEFT/HEFT-ins/LAHEFT/CPOP/SMF)
//	churn-model   graceful vs maximal-loss churn semantics ablation
//	families      DSMF on structured workflow families
//	report        markdown reproduction report with live shape checks
//	all           everything above in sequence
//
// With -artifacts DIR, series experiments additionally write
// <figure>.csv/.dat/.gp files (gnuplot redraws the paper-style plots).
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"strings"
	"time"

	"repro/internal/experiments"
)

func main() {
	var (
		name    = flag.String("experiment", "fig4-6", "experiment to run (see package doc)")
		scale   = flag.String("scale", "small", "paper|small|tiny")
		seed    = flag.Int64("seed", 2010, "root random seed")
		algo    = flag.String("algo", "DSMF", "algorithm for -experiment single")
		maxLF   = flag.Int("maxlf", 8, "largest load factor for fig7-8")
		arts    = flag.String("artifacts", "", "directory for CSV/DAT/gnuplot artifacts (series experiments)")
		cpuProf = flag.String("cpuprofile", "", "write a CPU profile to this file")
		memProf = flag.String("memprofile", "", "write a heap profile to this file on exit")
	)
	flag.Parse()
	artifactsDir = *arts
	if *name != "single" {
		flag.Visit(func(f *flag.Flag) {
			if f.Name == "algo" {
				fmt.Fprintf(os.Stderr, "p2pgridsim: -algo only applies to -experiment single; %q runs its fixed algorithm set\n", *name)
			}
		})
	}

	sc, err := experiments.ScaleByName(*scale)
	if err != nil {
		fatal(err)
	}
	// run (not main) owns the profile lifecycles so they close properly on
	// error paths too: fatal exits the process and would skip any defers.
	if err := run(sc, *name, *seed, *maxLF, *algo, *cpuProf, *memProf); err != nil {
		fatal(err)
	}
}

func run(sc experiments.Scale, name string, seed int64, maxLF int, algo, cpuProf, memProf string) error {
	if cpuProf != "" {
		f, err := os.Create(cpuProf)
		if err != nil {
			return err
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			return err
		}
		defer pprof.StopCPUProfile()
	}
	start := time.Now()
	dispatchErr := dispatch(name, sc, seed, maxLF, algo)
	if dispatchErr == nil {
		fmt.Fprintf(os.Stderr, "done in %v\n", time.Since(start).Round(time.Millisecond))
	}
	if memProf != "" {
		// Written even when dispatch failed: a heap snapshot of the errored
		// run is exactly what the flag exists to capture.
		if err := writeHeapProfile(memProf); err != nil {
			if dispatchErr == nil {
				return err
			}
			// The dispatch error takes precedence, but the missing profile
			// must not go unnoticed.
			fmt.Fprintln(os.Stderr, "p2pgridsim: heap profile not written:", err)
		}
	}
	return dispatchErr
}

func writeHeapProfile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	runtime.GC() // up-to-date live-heap statistics
	return pprof.WriteHeapProfile(f)
}

// artifactsDir, when set, receives <figure>.csv/.dat/.gp files for every
// series experiment.
var artifactsDir string

func exportSeries(sets ...experiments.SeriesSet) error {
	if artifactsDir == "" {
		return nil
	}
	for i, set := range sets {
		name := fmt.Sprintf("series%d", i)
		if len(set.Title) > 7 {
			name = strings.ToLower(strings.ReplaceAll(strings.Fields(set.Title)[1], ":", ""))
			name = "fig" + strings.TrimSuffix(name, ".")
		}
		files, err := set.WriteArtifacts(artifactsDir, name)
		if err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "wrote %v\n", files)
	}
	return nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "p2pgridsim:", err)
	os.Exit(1)
}

func dispatch(name string, sc experiments.Scale, seed int64, maxLF int, algo string) error {
	switch name {
	case "table1":
		fmt.Println(experiments.TableI().Format())
	case "single":
		res, err := experiments.SingleRun(sc, seed, algo)
		if err != nil {
			return err
		}
		fmt.Printf("%s at %s scale (%d nodes, %d workflows, %.0f h):\n",
			res.Algo, sc.Name, sc.Nodes, res.Submitted, sc.HorizonHours)
		fmt.Println(res.Collector.FormatSeries())
	case "fig3":
		fmt.Println(experiments.Fig3Report())
	case "fig4-6":
		return runStatic(sc, seed)
	case "fcfs":
		table, _, err := experiments.FCFSAblation(sc, seed)
		if err != nil {
			return err
		}
		fmt.Println(table.Format())
	case "fcfs-rep":
		table, err := experiments.ReplicatedFCFSAblation(sc, seed, 3)
		if err != nil {
			return err
		}
		fmt.Println(table.Format())
	case "fig7-8":
		act, ae, err := experiments.LoadFactorSweep(sc, seed, maxLF)
		if err != nil {
			return err
		}
		fmt.Println(act.Format())
		fmt.Println(ae.Format())
	case "fig9-10":
		act, ae, err := experiments.CCRSweep(sc, seed)
		if err != nil {
			return err
		}
		fmt.Println(act.Format())
		fmt.Println(ae.Format())
	case "fig11":
		return runScalability(sc, seed)
	case "fig12-14":
		return runChurn(sc, seed, false)
	case "reschedule":
		return runChurn(sc, seed, true)
	case "oracle":
		table, err := experiments.OracleAblation(sc, seed)
		if err != nil {
			return err
		}
		fmt.Println(table.Format())
	case "planners":
		table, err := experiments.PlannerShootout(sc, seed)
		if err != nil {
			return err
		}
		fmt.Println(table.Format())
	case "churn-model":
		table, err := experiments.ChurnModelAblation(sc, seed, 0.2)
		if err != nil {
			return err
		}
		fmt.Println(table.Format())
	case "report":
		out, err := experiments.Report(sc, seed)
		if err != nil {
			return err
		}
		fmt.Println(out)
	case "families":
		table, err := experiments.FamilyComparison(sc, seed)
		if err != nil {
			return err
		}
		fmt.Println(table.Format())
	case "all":
		for _, n := range []string{"table1", "fig3", "fig4-6", "fcfs", "fig7-8", "fig9-10", "fig11", "fig12-14", "reschedule", "oracle", "planners", "churn-model", "families"} {
			fmt.Printf("==== %s ====\n", n)
			if err := dispatch(n, sc, seed, maxLF, algo); err != nil {
				return err
			}
		}
	default:
		return fmt.Errorf("unknown experiment %q", name)
	}
	return nil
}

func runStatic(sc experiments.Scale, seed int64) error {
	results, err := experiments.StaticComparison(sc, seed)
	if err != nil {
		return err
	}
	f4 := experiments.Fig4Throughput(results)
	f5 := experiments.Fig5FinishTime(results)
	f6 := experiments.Fig6Efficiency(results)
	fmt.Println(f4.Format())
	fmt.Println(f5.Format())
	fmt.Println(f6.Format())
	fmt.Println(experiments.SummaryTable("Converged final state", results).Format())
	return exportSeries(f4, f5, f6)
}

func runScalability(sc experiments.Scale, seed int64) error {
	sizes := experiments.ScalabilitySizes(sc)
	points, err := experiments.ScalabilitySweep(sc, seed, sizes)
	if err != nil {
		return err
	}
	fmt.Println(experiments.ScalabilityTable(points).Format())
	return nil
}

func runChurn(sc experiments.Scale, seed int64, reschedule bool) error {
	dfs := []float64{0, 0.1, 0.2, 0.3, 0.4}
	results, err := experiments.ChurnSweep(sc, seed, dfs, reschedule)
	if err != nil {
		return err
	}
	f12 := experiments.Fig12Throughput(results)
	f13 := experiments.Fig13FinishTime(results)
	f14 := experiments.Fig14Efficiency(results)
	fmt.Println(f12.Format())
	fmt.Println(f13.Format())
	fmt.Println(f14.Format())
	if err := exportSeries(f12, f13, f14); err != nil {
		return err
	}
	title := "Churn final state"
	if reschedule {
		title += " (with rescheduling extension)"
	}
	fmt.Println(experiments.SummaryTable(title, results).Format())
	return nil
}
