// Command p2pgridsim regenerates the tables and figures of "Dual-Phase
// Just-in-Time Workflow Scheduling in P2P Grid Systems" (Di & Wang, ICPP
// 2010) as text tables/series.
//
// Usage:
//
//	p2pgridsim -experiment <name> [-scale paper|small|tiny] [-seed N] [-reps N]
//
// Experiments:
//
//	table1        print Table I (experimental setting)
//	single        one run of -algo (default DSMF): the unit of every sweep,
//	              handy with -cpuprofile/-memprofile for scale checks
//	fig3          the worked two-workflow example (RPMs, scheduling orders)
//	fig4-6        static comparison of the eight algorithms (three figures);
//	              -reps N>1 replicates it over N seeds and adds error bars
//	fcfs          Section IV.B second-phase-vs-FCFS ablation
//	fcfs-rep      the same ablation replicated over seeds (mean ± std)
//	fig7-8        load factor sweep (ACT and AE tables; -reps adds ± CI)
//	fig9-10       CCR sweep (ACT and AE tables; -reps adds ± CI)
//	fig11         scalability sweep (gossip space bound, AE, ACT)
//	arrival       ACT/AE vs arrival intensity (Poisson ladder up to the
//	              batch endpoint, 95% CIs with -reps > 1); -trace FILE
//	              adds a trace-replay column ("sample" = bundled trace)
//	sla           deadline-miss rate and spend per workflow across a
//	              deadline ladder: the DBC-cost optimizer against the
//	              best-effort DSMF baseline (95% CIs with -reps > 1)
//	fig12-14      churn sweep (throughput/ACT/AE series per dynamic factor;
//	              -reps N>1 replicates it over N seeds and adds error bars)
//	reschedule    churn with the failed-task rescheduling extension
//	oracle        DSMF information ablation (gossip vs oracle views)
//	planners      full-ahead planner shootout (HEFT/HEFT-ins/LAHEFT/CPOP/SMF)
//	churn-model   graceful vs maximal-loss churn semantics ablation
//	families      DSMF on structured workflow families
//	report        markdown reproduction report with live shape checks
//	sweep         multi-seed scenario sweep: -axes picks the scenario axes,
//	              -reps the replications, -out the JSON destination
//	all           everything above (except sweep) in sequence
//
// Workloads need not arrive in one batch: -arrival attaches an arrival
// process (poisson:RATE, mmpp:RATE[:BURST], diurnal:RATE[:PERIODH], rates
// in workflows/hour) to single runs and sweep cells, and -trace FILE
// replays an SWF/GWA grid trace (submit times and job sizes mapped onto
// Table I DAGs; see internal/workload/traces).
//
// Runs can also be economic: -price RATE[:SPREAD] prices every node
// (capacity-proportional per-MI rates with an optional random spread) and
// -sla SPEC (deadline:F | budget:F | both:DF:BF) attaches deadline and/or
// budget contracts to every workflow of a single run or sweep cell. The
// DBC-cost / DBC-time / DBC-ct algorithms (usable with -experiment single
// -algo) schedule against those contracts; everything else runs
// best-effort and merely gets measured against them (deadline-miss and
// spend metrics appear in snapshots and sweep JSON whenever the economy
// is active; see internal/economy).
//
// The sweep experiment expands a declarative scenario matrix (axes from
// -axes: algo, churn, lf, ccr, scale, arrival, sla), replicates every cell over -reps
// independent seeds, and emits deterministic JSON with mean / stddev / 95%
// CI per (scenario, algorithm) cell: the same invocation produces
// byte-identical output. Progress streams to stderr. The matrix executes
// on the streaming runner, which drops per-run state as cells finalize, so
// peak memory does not grow with -reps. Additional sweep modes:
//
//	-shard i/n    run only shard i of n (a [lo,hi) range of the canonical
//	              job enumeration) and emit a mergeable partial result —
//	              the static distributed-sweep building block
//	-merge a,b    reassemble shard files into the full sweep JSON,
//	              byte-identical to a single-host run (no simulation)
//	-coordinate DIR
//	              run the sweep through a shared work-stealing directory:
//	              initialize DIR (one claimable work unit per cell, lease
//	              TTL from -lease-ttl), participate as a worker until the
//	              directory drains, then merge the per-cell partials into
//	              the full sweep JSON — byte-identical to a single-host
//	              run. Point any number of `p2pgridsim -worker DIR`
//	              processes (other machines included, via a shared
//	              filesystem) at the same DIR to drain it faster; crashed
//	              workers' cells are re-leased automatically
//	-cache DIR    warm-start cell cache: re-runs execute only the cells
//	              (or added replications) missing from DIR
//	-precision r  per-cell adaptive replication: each cell draws seeds
//	              (3, 6, 12, ...) until its ACT 95% CI half-width is under
//	              r x |mean|, stopping converged cells while noisy ones
//	              keep sampling. -reps caps every cell when given
//	              explicitly; without it cells run until they converge.
//	              The JSON records ragged per-cell rep counts
//	-cache-gc     trim the -cache directory instead of running anything:
//	              drop entries beyond -cache-budget MB or older than
//	              -cache-days days, oldest access first
//
// Worker mode runs no experiment of its own:
//
//	p2pgridsim -worker DIR [-cache DIR] [-sleep-per-job D]
//
// joins the sweep whose work directory is DIR (created by -coordinate):
// claim a cell, run its replications, publish its partial, repeat —
// stealing cells from expired leases — until the directory drains.
// -sleep-per-job inserts an artificial delay before every replication (a
// test hook that makes this worker slow enough to be stolen from).
//
// With -artifacts DIR, series experiments additionally write
// <figure>.csv/.dat/.gp files (gnuplot redraws the paper-style plots;
// replicated series carry yerrorlines error bars), and sweep writes
// sweep.json/sweep.csv.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"runtime"
	"runtime/pprof"
	"strconv"
	"strings"
	"time"

	"repro/internal/economy"
	"repro/internal/experiments"
	"repro/internal/experiments/executor"
	"repro/internal/obs"
	"repro/internal/trace"
	"repro/internal/workload/arrival"
	"repro/internal/workload/loadspec"
	"repro/internal/workload/traces"
)

func main() {
	os.Exit(cliMain(os.Args[1:], os.Stdout, os.Stderr))
}

// options carries the parsed command line; stdout/stderr indirection keeps
// every error path testable without spawning a subprocess.
type options struct {
	experiment string
	scale      experiments.Scale
	seed       int64
	algo       string
	maxLF      int
	reps       int
	repsSet    bool // -reps given explicitly (fcfs-rep keeps its own default otherwise)
	axes       string
	out        string
	artifacts  string
	shard      string  // "i/n": run only one job-ID shard of the sweep
	merge      string  // comma-separated shard files to merge (no simulation)
	cacheDir   string  // warm-start cell cache directory
	precision  float64 // adaptive replication target (0 = off)
	coordinate string  // work-stealing coordinator directory for the sweep
	worker     string  // drain an existing work directory instead of running an experiment

	sleepPerJob time.Duration // artificial per-replication delay (worker test hook)
	leaseTTL    time.Duration // work-unit lease expiry recorded at -coordinate init

	arrival    string  // arrival process (batch|poisson:R|mmpp:R[:B]|diurnal:R[:P]|trace)
	tracePath  string  // SWF trace file ("sample" = the bundled demo trace)
	traceScale float64 // submit-time multiplier compressing/stretching the trace
	model      string  // fitted workload-model artifact (wfgen -fit output)
	synth      int     // -model synthesis job count (0 = the model's fitted count)

	sla   string // SLA contract spec (none|deadline:F|budget:F|both:DF:BF)
	price string // pricing model (none|RATE[:SPREAD])

	cacheGC     bool    // run a cache GC pass instead of an experiment
	cacheBudget int64   // GC size budget in MB (0 = no size bound)
	cacheDays   float64 // GC max entry age in days (0 = no age bound)

	shards int // event-engine shards per simulation (<= 1: serial engine)

	serve       string  // run the scheduler daemon on this address instead of an experiment
	pace        float64 // -serve wall-clock pacing (virtual s per wall s; 0 = virtual clock)
	maxInFlight int     // -serve admission bound on unfinished workflows

	traceOut  string // write the single run's Chrome trace-event JSON here
	gantt     bool   // print an ASCII Gantt chart after -experiment single
	obs       bool   // collect per-cell latency histograms in the sweep JSON
	logLevel  string // structured log level for -serve/-worker/-coordinate
	logFormat string // structured log format (text|json)
	pprofOn   bool   // expose /debug/pprof on the -serve daemon

	stdout, stderr io.Writer
}

// economySetup resolves the -sla/-price flags into the specs experiments
// consume, enforcing the cross-flag rule the specs cannot see alone:
// budgets are denominated in money, so an SLA with a budget side needs
// pricing to be on.
func (o options) economySetup() (economy.SLASpec, economy.PriceSpec, error) {
	sla, err := economy.ParseSLA(o.sla)
	if err != nil {
		return economy.SLASpec{}, economy.PriceSpec{}, err
	}
	price, err := economy.ParsePrice(o.price)
	if err != nil {
		return economy.SLASpec{}, economy.PriceSpec{}, err
	}
	if sla.HasBudget() && !price.Enabled() {
		return economy.SLASpec{}, economy.PriceSpec{}, fmt.Errorf("-sla %q sets budgets, which need pricing: add -price RATE[:SPREAD]", o.sla)
	}
	return sla, price, nil
}

// arrivalSetup resolves the -arrival/-trace/-model flags into the pieces
// experiments consume: a parsed arrival spec and/or a loaded trace.
// "-trace sample" (or "-arrival trace" alone) selects the bundled demo
// trace, anything else is an SWF file path; -model synthesizes a trace
// from a fitted workload model (wfgen -fit) under the run seed. The
// resolution rules and error vocabulary live in loadspec, shared with
// wfgen and the service API.
func (o options) arrivalSetup() (arrival.Spec, *traces.Trace, error) {
	sp, err := loadspec.ResolveOptions(loadspec.Options{
		Arrival: o.arrival, Trace: o.tracePath, TraceScale: o.traceScale,
		Model: o.model, Synth: o.synth, Seed: o.seed,
	})
	if err != nil {
		return arrival.Spec{}, nil, err
	}
	return sp.Arrival, sp.Trace, nil
}

// cliMain parses args and runs the selected experiment, returning the
// process exit code. Every failure path returns non-zero: flag errors and
// stray positional arguments exit 2, experiment errors exit 1.
func cliMain(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("p2pgridsim", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		name    = fs.String("experiment", "fig4-6", "experiment to run (see package doc)")
		scale   = fs.String("scale", "small", "paper|small|tiny")
		seed    = fs.Int64("seed", 2010, "root random seed")
		algo    = fs.String("algo", "DSMF", "algorithm for -experiment single")
		maxLF   = fs.Int("maxlf", 8, "largest load factor for fig7-8 and the sweep lf axis")
		reps    = fs.Int("reps", 1, "seed replications for fig4-6/fig7-8/fig9-10/sweep (error bars need > 1)")
		axes    = fs.String("axes", "algo", "comma-separated sweep axes: algo,churn,lf,ccr,scale,arrival")
		out     = fs.String("out", "", "write sweep JSON to this file (default: stdout)")
		shard   = fs.String("shard", "", "run only shard i/n of the sweep job matrix (e.g. 0/2) and emit a mergeable partial result")
		merge   = fs.String("merge", "", "comma-separated shard JSON files to merge into the full sweep result (no simulation)")
		coord   = fs.String("coordinate", "", "run the sweep through this shared work-stealing directory: init, participate as a worker, then merge (see package doc)")
		work    = fs.String("worker", "", "drain the sweep work directory DIR (created by -coordinate) instead of running an experiment")
		slpj    = fs.Duration("sleep-per-job", 0, "worker test hook: sleep this long before every replication (makes the worker slow enough to be stolen from)")
		lttl    = fs.Duration("lease-ttl", 2*time.Minute, "work-unit lease expiry recorded when -coordinate initializes a directory; workers heartbeat between replications, so set it comfortably above the longest single replication (crashed or wedged workers' cells are re-leased and re-run after this long without progress)")
		cache   = fs.String("cache", "", "warm-start cell cache directory: re-runs execute only cells missing from it")
		prec    = fs.Float64("precision", 0, "per-cell adaptive replication: each cell draws seeds until its ACT 95% CI half-width is under this fraction of its mean (an explicit -reps caps every cell)")
		arr     = fs.String("arrival", "", "arrival process for single/sweep cells: batch|poisson:RATE|mmpp:RATE[:BURST]|diurnal:RATE[:PERIODH]|trace (rates in workflows/hour)")
		slaF    = fs.String("sla", "", "SLA contract for single/sweep cells: none|deadline:FACTOR|budget:FACTOR|both:DF:BF (factors scale the critical path / cheapest-feasible cost)")
		priceF  = fs.String("price", "", "pricing model for single/sweep cells and -serve: none|RATE[:SPREAD] (capacity-proportional per-MI rates, ±SPREAD jitter)")
		trc     = fs.String("trace", "", "SWF/GWF trace file for trace replay (\"sample\" = the bundled demo trace)")
		trscale = fs.Float64("trace-scale", 1, "multiply trace submit times by this factor (compress a multi-day trace into the horizon)")
		modelF  = fs.String("model", "", "synthesize the workload from this fitted model artifact (wfgen -fit output); replaces -arrival/-trace")
		synthF  = fs.Int("synth", 0, "number of jobs to synthesize from -model (0 = the model's fitted count)")
		cgc     = fs.Bool("cache-gc", false, "garbage-collect the -cache directory (needs -cache-budget and/or -cache-days) and exit")
		cbudget = fs.Int64("cache-budget", 0, "cache GC size budget in MB, oldest-access entries dropped first (0 = no size bound)")
		cdays   = fs.Float64("cache-days", 0, "cache GC max entry age in days (0 = no age bound)")
		shards  = fs.Int("shards", 1, "event-engine shards per simulation: >1 runs each grid on the parallel sharded engine (bit-identical results at any value)")
		serve   = fs.String("serve", "", "run as a long-lived scheduler daemon on this address (e.g. :8080) exposing the versioned /v1 HTTP API; combines only with -scale, -algo, -seed, -shards, -pace, -max-inflight")
		pace    = fs.Float64("pace", 0, "wall-clock pacing for -serve: virtual seconds advanced per wall second (0 = deterministic virtual clock, advanced only via POST /v1/clock/advance)")
		maxInf  = fs.Int("max-inflight", 256, "admission bound for -serve: submissions beyond this many unfinished workflows are shed with 429 + Retry-After")
		arts    = fs.String("artifacts", "", "directory for CSV/DAT/gnuplot artifacts (series experiments, sweep)")
		cpuProf = fs.String("cpuprofile", "", "write a CPU profile to this file")
		memProf = fs.String("memprofile", "", "write a heap profile to this file on exit")
		tout    = fs.String("trace-out", "", "write the run's span timeline as Chrome trace-event JSON to this file (-experiment single; load it in Perfetto or chrome://tracing)")
		gantt   = fs.Bool("gantt", false, "print an ASCII Gantt chart of per-node activity after -experiment single")
		obsF    = fs.Bool("obs", false, "collect virtual-time latency histograms per sweep cell and embed distribution summaries in the sweep JSON (plain single-host sweeps; not -shard/-merge/-coordinate/-precision/-cache)")
		logLvl  = fs.String("log-level", "", "structured log level for -serve/-worker/-coordinate: debug|info|warn|error (default info)")
		logFmt  = fs.String("log-format", "", "structured log format for -serve/-worker/-coordinate: text|json (default text)")
		pprofF  = fs.Bool("pprof", false, "expose /debug/pprof profiling handlers on the -serve daemon (off: those paths 404)")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if fs.NArg() > 0 {
		fmt.Fprintf(stderr, "p2pgridsim: unexpected arguments %q (did you mean -experiment %s?)\n",
			fs.Args(), fs.Arg(0))
		return 2
	}
	repsSet, sleepSet, ttlSet, paceSet, maxInfSet := false, false, false, false, false
	var setFlags []string
	fs.Visit(func(f *flag.Flag) {
		setFlags = append(setFlags, f.Name)
		switch f.Name {
		case "algo":
			if *name != "single" && *work == "" && *serve == "" {
				fmt.Fprintf(stderr, "p2pgridsim: -algo only applies to -experiment single; %q runs its fixed algorithm set\n", *name)
			}
		case "reps":
			repsSet = true
		case "sleep-per-job":
			sleepSet = true
		case "lease-ttl":
			ttlSet = true
		case "pace":
			paceSet = true
		case "max-inflight":
			maxInfSet = true
		}
	})
	if *work != "" {
		// Worker mode reads everything (spec, scale, reps, TTL) from the
		// work directory; an experiment flag alongside -worker would be
		// silently discarded, so reject the combination loudly.
		allowed := map[string]bool{
			"worker": true, "sleep-per-job": true, "cache": true,
			"log-level": true, "log-format": true,
		}
		for _, f := range setFlags {
			if !allowed[f] {
				fmt.Fprintf(stderr, "p2pgridsim: -%s does not combine with -worker (workers take their entire configuration from the work directory; only -cache, -sleep-per-job and -log-level/-log-format apply)\n", f)
				return 2
			}
		}
	}
	if sleepSet && *work == "" && *coord == "" {
		fmt.Fprintln(stderr, "p2pgridsim: -sleep-per-job only applies to -worker or -coordinate")
		return 2
	}
	if ttlSet && *coord == "" {
		fmt.Fprintln(stderr, "p2pgridsim: -lease-ttl only applies to -coordinate (workers read the TTL from the work directory)")
		return 2
	}
	if *work != "" && *coord != "" {
		fmt.Fprintln(stderr, "p2pgridsim: -worker and -coordinate are exclusive (the coordinator already participates as a worker)")
		return 2
	}
	if *serve != "" {
		// Service mode runs one grid forever; batch-experiment flags have
		// nothing to configure there, so reject them loudly instead of
		// silently ignoring them.
		allowed := map[string]bool{
			"serve": true, "pace": true, "max-inflight": true,
			"scale": true, "algo": true, "seed": true, "shards": true,
			"price":     true,
			"log-level": true, "log-format": true, "pprof": true,
		}
		for _, f := range setFlags {
			if !allowed[f] {
				fmt.Fprintf(stderr, "p2pgridsim: -%s does not combine with -serve (the daemon takes -scale, -algo, -seed, -shards, -pace, -max-inflight, -price, -log-level, -log-format, -pprof; workloads arrive over the HTTP API)\n", f)
				return 2
			}
		}
		if *pace < 0 {
			fmt.Fprintf(stderr, "p2pgridsim: -pace must be non-negative, got %v\n", *pace)
			return 2
		}
		if *maxInf < 1 {
			fmt.Fprintf(stderr, "p2pgridsim: -max-inflight must be at least 1, got %d\n", *maxInf)
			return 2
		}
	} else if paceSet || maxInfSet {
		fmt.Fprintln(stderr, "p2pgridsim: -pace and -max-inflight only apply to -serve")
		return 2
	}
	if *lttl <= 0 {
		fmt.Fprintf(stderr, "p2pgridsim: -lease-ttl must be positive, got %v\n", *lttl)
		return 2
	}
	if *slpj < 0 {
		fmt.Fprintf(stderr, "p2pgridsim: -sleep-per-job must be non-negative, got %v\n", *slpj)
		return 2
	}
	if *reps < 1 {
		fmt.Fprintf(stderr, "p2pgridsim: -reps must be at least 1, got %d\n", *reps)
		return 2
	}
	if (*tout != "" || *gantt) && (*name != "single" || *serve != "" || *work != "") {
		fmt.Fprintln(stderr, "p2pgridsim: -trace-out and -gantt only apply to -experiment single (the daemon serves spans via GET /v1/workflows/{id}/trace)")
		return 2
	}
	if *obsF && *name != "sweep" {
		fmt.Fprintln(stderr, "p2pgridsim: -obs only applies to -experiment sweep")
		return 2
	}
	if *logLvl != "" || *logFmt != "" {
		if *serve == "" && *work == "" && *coord == "" {
			fmt.Fprintln(stderr, "p2pgridsim: -log-level and -log-format only apply to -serve, -worker and -coordinate")
			return 2
		}
		// Validate eagerly so a typo fails before any work starts.
		if _, err := obs.NewLogger(io.Discard, *logLvl, *logFmt); err != nil {
			fmt.Fprintln(stderr, "p2pgridsim:", err)
			return 2
		}
	}
	if *pprofF && *serve == "" {
		fmt.Fprintln(stderr, "p2pgridsim: -pprof only applies to -serve")
		return 2
	}

	sc, err := experiments.ScaleByName(*scale)
	if err != nil {
		fmt.Fprintln(stderr, "p2pgridsim:", err)
		return 1
	}
	o := options{
		experiment:  *name,
		scale:       sc,
		seed:        *seed,
		algo:        *algo,
		maxLF:       *maxLF,
		reps:        *reps,
		repsSet:     repsSet,
		axes:        *axes,
		out:         *out,
		artifacts:   *arts,
		shard:       *shard,
		merge:       *merge,
		cacheDir:    *cache,
		precision:   *prec,
		coordinate:  *coord,
		worker:      *work,
		sleepPerJob: *slpj,
		leaseTTL:    *lttl,
		arrival:     *arr,
		tracePath:   *trc,
		traceScale:  *trscale,
		model:       *modelF,
		synth:       *synthF,
		sla:         *slaF,
		price:       *priceF,
		cacheGC:     *cgc,
		cacheBudget: *cbudget,
		cacheDays:   *cdays,
		shards:      *shards,
		serve:       *serve,
		pace:        *pace,
		maxInFlight: *maxInf,
		traceOut:    *tout,
		gantt:       *gantt,
		obs:         *obsF,
		logLevel:    *logLvl,
		logFormat:   *logFmt,
		pprofOn:     *pprofF,
		stdout:      stdout,
		stderr:      stderr,
	}
	if o.serve != "" {
		if err := runServe(o); err != nil {
			fmt.Fprintln(stderr, "p2pgridsim:", err)
			return 1
		}
		return 0
	}
	if o.cacheGC {
		if err := runCacheGC(o); err != nil {
			fmt.Fprintln(stderr, "p2pgridsim:", err)
			return 1
		}
		return 0
	}
	if o.worker != "" {
		if err := runWorker(o); err != nil {
			fmt.Fprintln(stderr, "p2pgridsim:", err)
			return 1
		}
		return 0
	}
	if o.arrival != "" || o.tracePath != "" || (o.traceScale != 0 && o.traceScale != 1) || o.model != "" || o.synth != 0 {
		// Validate eagerly: a malformed spec, unreadable trace or bad
		// model must fail even when the selected experiment would never
		// consume it.
		if _, _, err := o.arrivalSetup(); err != nil {
			fmt.Fprintln(stderr, "p2pgridsim:", err)
			return 2
		}
		switch o.experiment {
		case "single", "sweep", "arrival":
		default:
			fmt.Fprintf(stderr, "p2pgridsim: -arrival/-trace/-model only apply to single, sweep and arrival; %q runs the batch workload\n", o.experiment)
		}
	}
	if o.sla != "" || o.price != "" {
		// Same eager-validation rule as -arrival: a malformed spec must fail
		// even when the selected experiment would never consume it.
		if _, _, err := o.economySetup(); err != nil {
			fmt.Fprintln(stderr, "p2pgridsim:", err)
			return 2
		}
		switch o.experiment {
		case "single", "sweep":
		default:
			fmt.Fprintf(stderr, "p2pgridsim: -sla/-price only apply to single and sweep; %q runs without contracts\n", o.experiment)
		}
	}
	// run (not cliMain) owns the profile lifecycles so they close properly
	// on error paths too.
	if err := run(o, *cpuProf, *memProf); err != nil {
		fmt.Fprintln(stderr, "p2pgridsim:", err)
		return 1
	}
	return 0
}

func run(o options, cpuProf, memProf string) error {
	if cpuProf != "" {
		f, err := os.Create(cpuProf)
		if err != nil {
			return err
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			return err
		}
		defer pprof.StopCPUProfile()
	}
	start := time.Now()
	dispatchErr := dispatch(o, o.experiment)
	if dispatchErr == nil {
		fmt.Fprintf(o.stderr, "done in %v\n", time.Since(start).Round(time.Millisecond))
	}
	if memProf != "" {
		// Written even when dispatch failed: a heap snapshot of the errored
		// run is exactly what the flag exists to capture.
		if err := writeHeapProfile(memProf); err != nil {
			if dispatchErr == nil {
				return err
			}
			// The dispatch error takes precedence, but the missing profile
			// must not go unnoticed.
			fmt.Fprintln(o.stderr, "p2pgridsim: heap profile not written:", err)
		}
	}
	return dispatchErr
}

func writeHeapProfile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	runtime.GC() // up-to-date live-heap statistics
	return pprof.WriteHeapProfile(f)
}

func (o options) exportSeries(sets ...experiments.SeriesSet) error {
	if o.artifacts == "" {
		return nil
	}
	for i, set := range sets {
		name := fmt.Sprintf("series%d", i)
		if len(set.Title) > 7 {
			name = strings.ToLower(strings.ReplaceAll(strings.Fields(set.Title)[1], ":", ""))
			name = "fig" + strings.TrimSuffix(name, ".")
		}
		files, err := set.WriteArtifacts(o.artifacts, name)
		if err != nil {
			return err
		}
		fmt.Fprintf(o.stderr, "wrote %v\n", files)
	}
	return nil
}

func dispatch(o options, name string) error {
	stdout := o.stdout
	switch name {
	case "table1":
		fmt.Fprintln(stdout, experiments.TableI().Format())
	case "single":
		aspec, tr, err := o.arrivalSetup()
		if err != nil {
			return err
		}
		setting := experiments.NewSetting(o.scale, o.seed)
		setting.Arrival = aspec
		if tr != nil {
			setting.Trace = tr.Jobs
		}
		setting.SLA, setting.Price, err = o.economySetup()
		if err != nil {
			return err
		}
		setting.Shards = o.shards
		var tb *trace.Buffer
		if o.traceOut != "" || o.gantt {
			// Ring buffer: a small-scale run emits a few hundred thousand
			// lifecycle events at most; if a paper-scale run overflows the
			// ring, the oldest spans drop and the export simply starts later.
			tb = trace.NewBuffer(1 << 18)
			setting.Tracer = tb
		}
		res, err := experiments.SingleRunWith(setting, o.algo)
		if err != nil {
			return err
		}
		fmt.Fprintf(stdout, "%s at %s scale (%d nodes, %d workflows, %.0f h):\n",
			res.Algo, o.scale.Name, o.scale.Nodes, res.Submitted, o.scale.HorizonHours)
		if res.Unsubmitted > 0 || res.Dropped > 0 {
			fmt.Fprintf(stdout, "note: %d workflows arrived after the horizon (never entered the grid) and %d were dropped at dead homes; completion is relative to all %d\n",
				res.Unsubmitted, res.Dropped, res.Submitted)
		}
		fmt.Fprintln(stdout, res.Collector.FormatSeries())
		if sla := res.Final.SLA; sla != nil {
			fmt.Fprintf(stdout, "sla: deadline misses %d/%d, budget violations %d/%d, fallbacks %d, spend %.0f (%.0f per completed workflow)\n",
				sla.DeadlineMisses, sla.DeadlineWorkflows,
				sla.BudgetViolations, sla.BudgetWorkflows,
				sla.Fallbacks, sla.TotalSpend, sla.MeanSpend)
		}
		if o.gantt {
			fmt.Fprintln(stdout, tb.Gantt(0, o.scale.HorizonHours*3600, 100))
		}
		if o.traceOut != "" {
			doc := obs.BuildChromeTrace(tb.Events())
			data, err := doc.JSON()
			if err != nil {
				return err
			}
			if err := os.WriteFile(o.traceOut, data, 0o644); err != nil {
				return err
			}
			fmt.Fprintf(o.stderr, "wrote %s (%d trace events; load it in Perfetto or chrome://tracing)\n", o.traceOut, len(doc.TraceEvents))
		}
	case "fig3":
		fmt.Fprintln(stdout, experiments.Fig3Report())
	case "fig4-6":
		return runStatic(o)
	case "fcfs":
		table, _, err := experiments.FCFSAblation(o.scale, o.seed)
		if err != nil {
			return err
		}
		fmt.Fprintln(stdout, table.Format())
	case "fcfs-rep":
		reps := o.reps
		if !o.repsSet {
			reps = 3 // the historical default of this mode
		}
		table, err := experiments.ReplicatedFCFSAblation(o.scale, o.seed, reps)
		if err != nil {
			return err
		}
		fmt.Fprintln(stdout, table.Format())
	case "fig7-8":
		act, ae, err := experiments.LoadFactorSweepRep(o.scale, o.seed, o.maxLF, o.reps)
		if err != nil {
			return err
		}
		fmt.Fprintln(stdout, act.Format())
		fmt.Fprintln(stdout, ae.Format())
	case "fig9-10":
		act, ae, err := experiments.CCRSweepRep(o.scale, o.seed, o.reps)
		if err != nil {
			return err
		}
		fmt.Fprintln(stdout, act.Format())
		fmt.Fprintln(stdout, ae.Format())
	case "fig11":
		return runScalability(o)
	case "fig12-14":
		return runChurn(o, false)
	case "reschedule":
		return runChurn(o, true)
	case "oracle":
		table, err := experiments.OracleAblation(o.scale, o.seed)
		if err != nil {
			return err
		}
		fmt.Fprintln(stdout, table.Format())
	case "planners":
		table, err := experiments.PlannerShootout(o.scale, o.seed)
		if err != nil {
			return err
		}
		fmt.Fprintln(stdout, table.Format())
	case "churn-model":
		table, err := experiments.ChurnModelAblation(o.scale, o.seed, 0.2)
		if err != nil {
			return err
		}
		fmt.Fprintln(stdout, table.Format())
	case "report":
		out, err := experiments.Report(o.scale, o.seed)
		if err != nil {
			return err
		}
		fmt.Fprintln(stdout, out)
	case "families":
		table, err := experiments.FamilyComparison(o.scale, o.seed)
		if err != nil {
			return err
		}
		fmt.Fprintln(stdout, table.Format())
	case "arrival":
		return runArrival(o)
	case "sla":
		return runSLA(o)
	case "sweep":
		return runSweep(o)
	case "all":
		for _, n := range []string{"table1", "fig3", "fig4-6", "fcfs", "fig7-8", "fig9-10", "fig11", "fig12-14", "reschedule", "oracle", "planners", "churn-model", "families"} {
			fmt.Fprintf(stdout, "==== %s ====\n", n)
			if err := dispatch(o, n); err != nil {
				return err
			}
		}
	default:
		return fmt.Errorf("unknown experiment %q", name)
	}
	return nil
}

// sweepSpecFromAxes translates the -axes flag into a SweepSpec. Without the
// "algo" axis the sweep runs DSMF alone; scenario axes default to single
// points.
func sweepSpecFromAxes(axes string, sc experiments.Scale, seed int64, reps, maxLF int) (experiments.SweepSpec, error) {
	spec := experiments.SweepSpec{
		Name:       "sweep:" + axes,
		Scales:     []experiments.Scale{sc},
		Algorithms: []string{"DSMF"},
		Seed:       seed,
		Reps:       reps,
	}
	for _, ax := range strings.Split(axes, ",") {
		switch strings.TrimSpace(ax) {
		case "algo":
			spec.Algorithms = nil // all eight
		case "churn":
			spec.ChurnFactors = []float64{0, 0.1, 0.2, 0.3, 0.4}
			// Figs. 12-14 semantics: the df=0 baseline keeps the same
			// half-homes layout as the dynamic cells.
			spec.ChurnLayout = true
		case "lf", "load":
			lfs, err := experiments.LoadFactorAxis(maxLF)
			if err != nil {
				return spec, err
			}
			spec.LoadFactors = lfs
		case "ccr":
			spec.CCRCases = experiments.CCRCases()
		case "arrival":
			spec.Arrivals = experiments.ArrivalCasesFor(sc)
		case "sla":
			spec.SLAs = experiments.SLACasesFor(sc)
		case "scale":
			var scales []experiments.Scale
			for _, n := range experiments.ScalabilitySizes(sc) {
				s := sc
				s.Name = fmt.Sprintf("%s-n%d", sc.Name, n)
				s.Nodes = n
				scales = append(scales, s)
			}
			spec.Scales = scales
		case "":
			// Empty axes list (or a trailing comma): keep the defaults.
		default:
			return spec, fmt.Errorf("unknown sweep axis %q (algo|churn|lf|ccr|scale|arrival|sla)", ax)
		}
	}
	return spec, nil
}

// runSweep executes the declarative sweep through the streaming runner and
// writes deterministic JSON to -out (or stdout). Progress streams to
// stderr at every 10% of the matrix. -shard runs one job-ID range and
// emits a mergeable partial; -merge reassembles partials without
// simulating; -cache warm-starts from (and feeds) a per-cell result cache;
// -precision grows replication batches adaptively up to the -reps cap.
func runSweep(o options) error {
	if o.merge != "" {
		if o.shard != "" || o.precision > 0 || o.cacheDir != "" || o.coordinate != "" {
			return fmt.Errorf("-merge does not combine with -shard, -precision, -cache or -coordinate (merging never simulates)")
		}
		return runMerge(o)
	}
	if o.precision < 0 {
		return fmt.Errorf("-precision must be positive, got %v", o.precision)
	}
	if o.coordinate != "" {
		if o.shard != "" {
			return fmt.Errorf("-coordinate does not combine with -shard (the work directory already partitions the matrix)")
		}
		if o.precision > 0 {
			return fmt.Errorf("-coordinate does not combine with -precision (work units are fixed-replication cells)")
		}
	}
	if o.obs && (o.shard != "" || o.coordinate != "" || o.precision > 0 || o.cacheDir != "") {
		// Shard partials, the cell cache and the work directory all carry
		// schemas that predate distribution blocks; restoring from them
		// would yield partial summaries, so keep -obs to the plain path.
		return fmt.Errorf("-obs only applies to plain single-host sweeps (not -shard, -coordinate, -precision or -cache)")
	}
	spec, err := sweepSpecFromAxes(o.axes, o.scale, o.seed, o.reps, o.maxLF)
	if err != nil {
		return err
	}
	if o.arrival != "" || o.tracePath != "" || o.model != "" {
		aspec, tr, err := o.arrivalSetup()
		if err != nil {
			return err
		}
		if spec.Arrivals != nil {
			// The arrival axis carries its own intensity ladder; -trace
			// adds a replay column, but a single -arrival case conflicts.
			if o.arrival != "" {
				return fmt.Errorf("-arrival does not combine with -axes arrival (the axis is the intensity ladder); use -trace to add a replay cell")
			}
			spec.Arrivals = append(spec.Arrivals, experiments.TraceCase(tr))
		} else if tr != nil {
			spec.Arrivals = []experiments.ArrivalCase{experiments.TraceCase(tr)}
		} else if !aspec.IsBatch() {
			spec.Arrivals = []experiments.ArrivalCase{{Label: o.arrival, Spec: aspec}}
		}
	}
	if o.sla != "" || o.price != "" {
		sla, price, err := o.economySetup()
		if err != nil {
			return err
		}
		if spec.SLAs != nil {
			return fmt.Errorf("-sla/-price do not combine with -axes sla (the axis carries its own ladder and pricing)")
		}
		if sla.Enabled() || price.Enabled() {
			label := o.sla
			if label == "" {
				label = "price:" + o.price
			}
			spec.SLAs = []experiments.SLACase{{Label: label, SLA: sla, Price: price}}
		}
	}
	opts := experiments.RunOptions{
		Shards: o.shards,
		Obs:    o.obs,
		Progress: func(done, total int) {
			if done == total || done*10/total > (done-1)*10/total {
				fmt.Fprintf(o.stderr, "sweep: %d/%d runs (%d%%)\n", done, total, done*100/total)
			}
		},
	}
	if o.cacheDir != "" {
		if err := os.MkdirAll(o.cacheDir, 0o755); err != nil {
			return err
		}
		opts.Cache = executor.Disk{Dir: o.cacheDir}
	}
	if o.shard != "" {
		if o.precision > 0 {
			return fmt.Errorf("-shard does not combine with -precision (adaptive batches need the whole matrix)")
		}
		if o.artifacts != "" {
			return fmt.Errorf("-shard does not combine with -artifacts (a partial result has no complete cells to export; export from the merged run)")
		}
		idx, n, err := parseShard(o.shard)
		if err != nil {
			return err
		}
		part, err := experiments.RunShard(spec, idx, n, opts)
		if err != nil {
			return err
		}
		data, err := part.JSON()
		if err != nil {
			return err
		}
		fmt.Fprintf(o.stderr, "shard %d/%d: jobs [%d,%d) of %d\n", idx, n, part.Lo, part.Hi, part.Jobs)
		return writeOutput(o, data)
	}
	if o.coordinate != "" {
		wopts := experiments.WorkerOptions{
			Cache:       opts.Cache,
			SleepPerJob: o.sleepPerJob,
			Log:         o.stderr,
			Status:      o.stderr, // live straggler reports while waiting on other workers
		}
		if o.logLevel != "" || o.logFormat != "" {
			logger, err := obs.NewLogger(o.stderr, o.logLevel, o.logFormat)
			if err != nil {
				return err
			}
			wopts.Logger = logger
		}
		res, stats, err := experiments.CoordinateSweep(o.coordinate, spec, o.leaseTTL, wopts)
		if err != nil {
			return err
		}
		fmt.Fprintf(o.stderr, "coordinate %s: %d cells merged (this process completed %d, stole %d, lost %d)\n",
			o.coordinate, len(res.Cells), stats.Completed, stats.Stolen, stats.Lost)
		return writeSweepResult(o, res)
	}
	var res *experiments.SweepResult
	if o.precision > 0 {
		// Per-cell sequential stopping: an explicit -reps caps every cell,
		// otherwise cells sample until they individually converge.
		cap := 0
		if o.repsSet {
			cap = o.reps
		}
		res, err = experiments.RunAdaptiveCells(spec, o.precision, cap, opts)
		if err == nil {
			minReps, maxReps, issued := adaptiveShape(res)
			fmt.Fprintf(o.stderr, "adaptive: %d replications across %d cells (per-cell %d..%d)\n",
				issued, len(res.Cells), minReps, maxReps)
		}
	} else {
		res, err = experiments.RunSweepStream(spec, opts)
	}
	if err != nil {
		return err
	}
	return writeSweepResult(o, res)
}

// adaptiveShape summarizes a ragged adaptive result for the stderr note.
func adaptiveShape(res *experiments.SweepResult) (minReps, maxReps, issued int) {
	for i := range res.Cells {
		n := res.Cells[i].Agg.Reps
		issued += n
		if i == 0 || n < minReps {
			minReps = n
		}
		if n > maxReps {
			maxReps = n
		}
	}
	return minReps, maxReps, issued
}

// runWorker joins an existing sweep work directory (see -coordinate) and
// drains it: the body of `p2pgridsim -worker DIR`.
func runWorker(o options) error {
	var wopts experiments.WorkerOptions
	wopts.SleepPerJob = o.sleepPerJob
	wopts.Log = o.stderr
	if o.logLevel != "" || o.logFormat != "" {
		logger, err := obs.NewLogger(o.stderr, o.logLevel, o.logFormat)
		if err != nil {
			return err
		}
		wopts.Logger = logger
	}
	if o.cacheDir != "" {
		if err := os.MkdirAll(o.cacheDir, 0o755); err != nil {
			return err
		}
		wopts.Cache = executor.Disk{Dir: o.cacheDir}
	}
	stats, err := experiments.RunSweepWorker(o.worker, wopts)
	if err != nil {
		return err
	}
	fmt.Fprintf(o.stdout, "worker %s: %d cells completed, %d stolen, %d lost\n",
		o.worker, stats.Completed, stats.Stolen, stats.Lost)
	return nil
}

// runArrival prints the new arrival-intensity figure: every algorithm's
// converged ACT and AE across the scale's Poisson intensity ladder (plus
// a trace-replay column when -trace is given), with 95% CIs at -reps > 1.
func runArrival(o options) error {
	if o.arrival != "" {
		return fmt.Errorf("-experiment arrival runs a fixed intensity ladder; -arrival only applies to single/sweep (use -trace to add a replay column)")
	}
	_, tr, err := o.arrivalSetup()
	if err != nil {
		return err
	}
	act, ae, err := experiments.ArrivalSweepRep(o.scale, o.seed, o.reps, tr)
	if err != nil {
		return err
	}
	fmt.Fprintln(o.stdout, act.Format())
	fmt.Fprintln(o.stdout, ae.Format())
	return nil
}

// runSLA prints the economic figure: deadline-miss rate and spend per
// completed workflow across the scale's deadline ladder, the DBC-cost
// optimizer against the best-effort DSMF baseline (95% CIs at -reps > 1).
func runSLA(o options) error {
	if o.sla != "" || o.price != "" {
		return fmt.Errorf("-experiment sla runs a fixed deadline ladder; -sla/-price only apply to single/sweep")
	}
	miss, spend, err := experiments.SLASweepRep(o.scale, o.seed, o.reps)
	if err != nil {
		return err
	}
	fmt.Fprintln(o.stdout, miss.Format())
	fmt.Fprintln(o.stdout, spend.Format())
	return nil
}

// runCacheGC trims the warm-start cell cache under the -cache-budget /
// -cache-days bounds, oldest access first (see executor.Disk.GC).
func runCacheGC(o options) error {
	if o.cacheDir == "" {
		return fmt.Errorf("-cache-gc needs -cache DIR")
	}
	if o.cacheBudget < 0 || o.cacheDays < 0 {
		return fmt.Errorf("-cache-budget and -cache-days must be non-negative")
	}
	if o.cacheBudget == 0 && o.cacheDays == 0 {
		return fmt.Errorf("-cache-gc needs a bound: -cache-budget MB and/or -cache-days N")
	}
	st, err := executor.Disk{Dir: o.cacheDir}.GC(executor.GCOptions{
		MaxBytes: o.cacheBudget * 1 << 20,
		MaxAge:   time.Duration(o.cacheDays * 24 * float64(time.Hour)),
	})
	if err != nil {
		return err
	}
	fmt.Fprintf(o.stdout, "cache-gc %s: %d entries scanned, %d deleted, %.1f MB -> %.1f MB\n",
		o.cacheDir, st.Scanned, st.Deleted,
		float64(st.BytesBefore)/(1<<20), float64(st.BytesAfter)/(1<<20))
	return nil
}

// parseShard splits the -shard flag's "i/n" form. Strict: trailing or
// malformed input is rejected (a typo must not silently run the wrong
// job range).
func parseShard(s string) (idx, n int, err error) {
	left, right, ok := strings.Cut(s, "/")
	if ok {
		idx, err = strconv.Atoi(left)
		if err == nil {
			n, err = strconv.Atoi(right)
		}
	}
	if !ok || err != nil {
		return 0, 0, fmt.Errorf("-shard wants i/n (e.g. 0/2), got %q", s)
	}
	if n < 1 || idx < 0 || idx >= n {
		return 0, 0, fmt.Errorf("-shard %q out of range (want 0 <= i < n)", s)
	}
	return idx, n, nil
}

// runMerge loads shard partials and reassembles the full sweep result; the
// output is byte-identical to a single-host run of the same spec.
func runMerge(o options) error {
	var parts []*experiments.ShardResult
	for _, f := range strings.Split(o.merge, ",") {
		f = strings.TrimSpace(f)
		if f == "" {
			continue
		}
		data, err := os.ReadFile(f)
		if err != nil {
			return err
		}
		part, err := experiments.DecodeShard(data)
		if err != nil {
			return fmt.Errorf("%s: %w", f, err)
		}
		parts = append(parts, part)
	}
	if len(parts) == 0 {
		return fmt.Errorf("-merge needs at least one shard file")
	}
	res, err := experiments.MergeShards(parts...)
	if err != nil {
		return err
	}
	fmt.Fprintf(o.stderr, "merged %d shards into %d cells\n", len(parts), len(res.Cells))
	return writeSweepResult(o, res)
}

// writeOutput sends raw bytes to -out (with a stderr note) or stdout.
func writeOutput(o options, data []byte) error {
	if o.out == "" {
		_, err := o.stdout.Write(data)
		return err
	}
	if err := os.WriteFile(o.out, data, 0o644); err != nil {
		return err
	}
	fmt.Fprintf(o.stderr, "wrote %s\n", o.out)
	return nil
}

// writeSweepResult writes the sweep JSON (and optional artifacts/table),
// shared by the single-host, adaptive and merge paths.
func writeSweepResult(o options, res *experiments.SweepResult) error {
	data, err := res.JSON()
	if err != nil {
		return err
	}
	// Bare JSON on stdout: byte-identical across invocations of the same
	// spec (sharded, cached or cold), so CI can diff snapshots directly.
	if err := writeOutput(o, data); err != nil {
		return err
	}
	if o.out != "" {
		fmt.Fprintln(o.stdout, res.Table("Sweep "+res.Spec.Name).Format())
	}
	if o.artifacts != "" {
		if err := os.MkdirAll(o.artifacts, 0o755); err != nil {
			return err
		}
		artifacts := []struct {
			base    string
			content []byte
		}{
			{"sweep.json", data},
			{"sweep.csv", []byte(res.Table("Sweep " + res.Spec.Name).CSV())},
		}
		for _, a := range artifacts {
			path := filepath.Join(o.artifacts, a.base)
			if err := os.WriteFile(path, a.content, 0o644); err != nil {
				return err
			}
			fmt.Fprintf(o.stderr, "wrote %s\n", path)
		}
	}
	return nil
}

func runStatic(o options) error {
	res, err := experiments.StaticComparisonRep(o.scale, o.seed, o.reps)
	if err != nil {
		return err
	}
	f4 := res.Fig4Throughput()
	f5 := res.Fig5FinishTime()
	f6 := res.Fig6Efficiency()
	fmt.Fprintln(o.stdout, f4.Format())
	fmt.Fprintln(o.stdout, f5.Format())
	fmt.Fprintln(o.stdout, f6.Format())
	title := "Converged final state"
	if o.reps > 1 {
		title += fmt.Sprintf(" (mean ± 95%% CI over %d seeds)", o.reps)
	}
	fmt.Fprintln(o.stdout, res.SummaryTable(title).Format())
	return o.exportSeries(f4, f5, f6)
}

func runScalability(o options) error {
	sizes := experiments.ScalabilitySizes(o.scale)
	points, err := experiments.ScalabilitySweep(o.scale, o.seed, sizes)
	if err != nil {
		return err
	}
	fmt.Fprintln(o.stdout, experiments.ScalabilityTable(points).Format())
	return nil
}

func runChurn(o options, reschedule bool) error {
	dfs := []float64{0, 0.1, 0.2, 0.3, 0.4}
	res, err := experiments.ChurnSweepRep(o.scale, o.seed, dfs, reschedule, o.reps)
	if err != nil {
		return err
	}
	f12 := res.Fig12Throughput()
	f13 := res.Fig13FinishTime()
	f14 := res.Fig14Efficiency()
	fmt.Fprintln(o.stdout, f12.Format())
	fmt.Fprintln(o.stdout, f13.Format())
	fmt.Fprintln(o.stdout, f14.Format())
	if err := o.exportSeries(f12, f13, f14); err != nil {
		return err
	}
	title := "Churn final state"
	if reschedule {
		title += " (with rescheduling extension)"
	}
	if o.reps > 1 {
		title += fmt.Sprintf(" (mean ± 95%% CI over %d seeds)", o.reps)
	}
	fmt.Fprintln(o.stdout, res.ChurnSummaryTable(title).Format())
	return nil
}
