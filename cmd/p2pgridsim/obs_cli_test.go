package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// TestObsFlagValidation pins the new observability flags' guard rails:
// each applies to exactly one mode and everything else fails loudly.
func TestObsFlagValidation(t *testing.T) {
	cases := []struct {
		name string
		args []string
	}{
		{"trace-out on non-single", []string{"-experiment", "table1", "-scale", "tiny", "-trace-out", "t.json"}},
		{"gantt on non-single", []string{"-experiment", "sweep", "-scale", "tiny", "-axes", "", "-gantt"}},
		{"trace-out with worker", []string{"-worker", "w", "-trace-out", "t.json"}},
		{"obs on non-sweep", []string{"-experiment", "single", "-scale", "tiny", "-obs"}},
		{"obs with shard", []string{"-experiment", "sweep", "-scale", "tiny", "-axes", "", "-obs", "-shard", "0/2"}},
		{"obs with coordinate", []string{"-experiment", "sweep", "-scale", "tiny", "-axes", "", "-obs", "-coordinate", "c"}},
		{"obs with precision", []string{"-experiment", "sweep", "-scale", "tiny", "-axes", "", "-obs", "-precision", "0.1"}},
		{"obs with cache", []string{"-experiment", "sweep", "-scale", "tiny", "-axes", "", "-obs", "-cache", "cc"}},
		{"log-level without a long-lived mode", []string{"-experiment", "table1", "-scale", "tiny", "-log-level", "debug"}},
		{"bad log level", []string{"-experiment", "sweep", "-scale", "tiny", "-axes", "", "-coordinate", "c", "-log-level", "loud"}},
		{"bad log format", []string{"-experiment", "sweep", "-scale", "tiny", "-axes", "", "-coordinate", "c", "-log-format", "xml"}},
		{"pprof without serve", []string{"-experiment", "table1", "-scale", "tiny", "-pprof"}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			code, _, stderr := runCLI(tc.args...)
			if code == 0 {
				t.Fatalf("args %v exited 0; stderr:\n%s", tc.args, stderr)
			}
			if stderr == "" {
				t.Fatalf("args %v failed silently", tc.args)
			}
		})
	}
}

// TestTraceOutWritesChromeTrace is the satellite acceptance check: the
// -trace-out file of a single run is structurally valid Chrome
// trace-event JSON — parseable, non-empty, with only known phases and
// non-negative durations.
func TestTraceOutWritesChromeTrace(t *testing.T) {
	path := filepath.Join(t.TempDir(), "trace.json")
	code, _, stderr := runCLI("-experiment", "single", "-scale", "tiny", "-trace-out", path)
	if code != 0 {
		t.Fatalf("exit %d, stderr:\n%s", code, stderr)
	}
	if !strings.Contains(stderr, "trace events") {
		t.Fatalf("no confirmation line on stderr:\n%s", stderr)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []struct {
			Ph  string  `json:"ph"`
			Ts  float64 `json:"ts"`
			Dur float64 `json:"dur"`
		} `json:"traceEvents"`
		DisplayTimeUnit string `json:"displayTimeUnit"`
	}
	if err := json.Unmarshal(data, &doc); err != nil {
		t.Fatalf("trace file is not valid JSON: %v", err)
	}
	if doc.DisplayTimeUnit != "ms" || len(doc.TraceEvents) == 0 {
		t.Fatalf("unexpected trace document: unit=%q events=%d", doc.DisplayTimeUnit, len(doc.TraceEvents))
	}
	var spans int
	for _, e := range doc.TraceEvents {
		switch e.Ph {
		case "X":
			spans++
			if e.Dur < 0 || e.Ts < 0 {
				t.Fatalf("bad span geometry: %+v", e)
			}
		case "i", "M":
		default:
			t.Fatalf("unexpected phase %q", e.Ph)
		}
	}
	if spans == 0 {
		t.Fatal("trace carries no complete spans")
	}
}

// TestGanttFlagRendersChart wires the satellite: -gantt on a single run
// prints the per-node ASCII Gantt chart after the metrics series.
func TestGanttFlagRendersChart(t *testing.T) {
	code, stdout, stderr := runCLI("-experiment", "single", "-scale", "tiny", "-gantt")
	if code != 0 {
		t.Fatalf("exit %d, stderr:\n%s", code, stderr)
	}
	if !strings.Contains(stdout, "node") || !strings.Contains(stdout, "gantt") {
		t.Fatalf("no gantt chart in output:\n%s", stdout)
	}
}

// TestSweepObsFlag pins the CLI face of RunOptions.Obs: the sweep JSON
// gains per-cell distribution summaries with -obs and carries no trace of
// them without.
func TestSweepObsFlag(t *testing.T) {
	dir := t.TempDir()
	withPath := filepath.Join(dir, "with.json")
	withoutPath := filepath.Join(dir, "without.json")
	args := []string{"-experiment", "sweep", "-scale", "tiny", "-axes", "", "-reps", "2", "-out"}
	if code, _, stderr := runCLI(append(args, withPath, "-obs")...); code != 0 {
		t.Fatalf("obs sweep exit %d:\n%s", code, stderr)
	}
	if code, _, stderr := runCLI(append(args, withoutPath)...); code != 0 {
		t.Fatalf("plain sweep exit %d:\n%s", code, stderr)
	}
	with, err := os.ReadFile(withPath)
	if err != nil {
		t.Fatal(err)
	}
	without, err := os.ReadFile(withoutPath)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(with), `"obs"`) || !strings.Contains(string(with), `"exec_seconds"`) {
		t.Fatalf("-obs artifact has no distribution summaries:\n%.400s", with)
	}
	if strings.Contains(string(without), `"obs"`) {
		t.Fatalf("plain artifact mentions obs:\n%.400s", without)
	}
}
