package main

import (
	"encoding/json"
	"net"
	"net/http"
	"strings"
	"syscall"
	"testing"
	"time"
)

// TestServeFlagValidation pins the -serve flag-combination contract.
func TestServeFlagValidation(t *testing.T) {
	cases := []struct {
		name string
		args []string
	}{
		{"pace without serve", []string{"-pace", "100"}},
		{"max-inflight without serve", []string{"-max-inflight", "8"}},
		{"serve with experiment", []string{"-serve", ":0", "-experiment", "sweep"}},
		{"serve with arrival", []string{"-serve", ":0", "-arrival", "poisson:60"}},
		{"serve with out", []string{"-serve", ":0", "-out", "x.json"}},
		{"serve with worker", []string{"-serve", ":0", "-worker", "dir"}},
		{"negative pace", []string{"-serve", ":0", "-pace", "-1"}},
		{"zero max-inflight", []string{"-serve", ":0", "-max-inflight", "0"}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			code, _, stderr := runCLI(tc.args...)
			if code != 2 {
				t.Fatalf("exit %d, want 2; stderr: %s", code, stderr)
			}
			if stderr == "" {
				t.Fatalf("no diagnostic on stderr")
			}
		})
	}
	// Unknown algorithm and unbindable address surface as runtime errors.
	if code, _, _ := runCLI("-serve", ":0", "-algo", "nope"); code != 1 {
		t.Fatalf("bad algo: exit %d, want 1", code)
	}
	if code, _, _ := runCLI("-serve", "256.0.0.1:99999"); code != 1 {
		t.Fatalf("bad address: exit %d, want 1", code)
	}
}

// TestServeLifecycle runs the daemon in-process: submit over HTTP, advance
// the virtual clock, scrape metrics, then SIGTERM and require a clean
// drain (exit 0).
func TestServeLifecycle(t *testing.T) {
	// A pre-bound listener would be cleaner, but the daemon owns its
	// socket; pick a free port and race-free enough for a test.
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := ln.Addr().String()
	ln.Close()

	done := make(chan struct {
		code   int
		stderr string
	}, 1)
	go func() {
		code, _, stderr := runCLI("-serve", addr, "-scale", "tiny", "-seed", "7", "-max-inflight", "4")
		done <- struct {
			code   int
			stderr string
		}{code, stderr}
	}()

	base := "http://" + addr
	waitUp(t, base)

	resp, err := http.Post(base+"/v1/workflows", "application/json", strings.NewReader(`{"name":"smoke"}`))
	if err != nil {
		t.Fatalf("submit: %v", err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("submit: status %d", resp.StatusCode)
	}
	resp, err = http.Post(base+"/v1/clock/advance", "application/json", strings.NewReader(`{"by_seconds": 7200}`))
	if err != nil {
		t.Fatalf("advance: %v", err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("advance: status %d", resp.StatusCode)
	}
	resp, err = http.Get(base + "/v1/workflows/0")
	if err != nil {
		t.Fatalf("status: %v", err)
	}
	var st struct {
		State string `json:"state"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatalf("status body: %v", err)
	}
	resp.Body.Close()
	if st.State == "" {
		t.Fatalf("empty workflow state")
	}
	resp, err = http.Get(base + "/metrics")
	if err != nil {
		t.Fatalf("scrape: %v", err)
	}
	resp.Body.Close()
	if got := resp.Header.Get("Content-Type"); !strings.HasPrefix(got, "text/plain") {
		t.Fatalf("prometheus content type %q", got)
	}

	// SIGTERM → graceful drain → exit 0. The handler is registered by
	// runServe, so the test process itself is safe to signal.
	if err := syscall.Kill(syscall.Getpid(), syscall.SIGTERM); err != nil {
		t.Fatalf("kill: %v", err)
	}
	select {
	case r := <-done:
		if r.code != 0 {
			t.Fatalf("daemon exit %d, stderr:\n%s", r.code, r.stderr)
		}
		if !strings.Contains(r.stderr, "drained") {
			t.Fatalf("no drain report in stderr:\n%s", r.stderr)
		}
	case <-time.After(30 * time.Second):
		t.Fatalf("daemon did not drain within 30s of SIGTERM")
	}
}

func waitUp(t *testing.T, base string) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		resp, err := http.Get(base + "/v1/healthz")
		if err == nil {
			resp.Body.Close()
			if resp.StatusCode == http.StatusOK {
				return
			}
		}
		time.Sleep(20 * time.Millisecond)
	}
	t.Fatalf("daemon never became healthy at %s", base)
}
