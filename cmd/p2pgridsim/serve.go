package main

import (
	"context"
	"errors"
	"fmt"
	"net"
	"net/http"
	httppprof "net/http/pprof"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/economy"
	"repro/internal/obs"
	"repro/internal/service"
	"repro/internal/wire"
)

// runServe runs the long-lived scheduler daemon: one grid behind the /v1
// HTTP API, alive until SIGTERM/SIGINT triggers a graceful drain. The HTTP
// listener stays up during the drain so clients observe the 503s and the
// draining health state instead of connection resets; once the last
// in-flight workflow resolves, the listener shuts down and the process
// exits 0.
func runServe(o options) error {
	price, err := economy.ParsePrice(o.price)
	if err != nil {
		return err
	}
	logger, err := obs.NewLogger(o.stderr, o.logLevel, o.logFormat)
	if err != nil {
		return err
	}
	svc, err := service.New(service.Config{
		Scale:       o.scale,
		Algo:        o.algo,
		Seed:        o.seed,
		Shards:      o.shards,
		MaxInFlight: o.maxInFlight,
		Pace:        o.pace,
		Price:       price,
		Log:         logger,
	})
	if err != nil {
		return err
	}
	defer svc.Close()

	ln, err := net.Listen("tcp", o.serve)
	if err != nil {
		return fmt.Errorf("serve: %w", err)
	}
	handler := service.Handler(svc)
	if o.pprofOn {
		// Explicit mounts on an outer mux, not net/http/pprof's package
		// init on http.DefaultServeMux: with -pprof off the daemon must
		// 404 these paths, not quietly expose them.
		mux := http.NewServeMux()
		mux.Handle("/", handler)
		mux.HandleFunc("/debug/pprof/", httppprof.Index)
		mux.HandleFunc("/debug/pprof/cmdline", httppprof.Cmdline)
		mux.HandleFunc("/debug/pprof/profile", httppprof.Profile)
		mux.HandleFunc("/debug/pprof/symbol", httppprof.Symbol)
		mux.HandleFunc("/debug/pprof/trace", httppprof.Trace)
		handler = mux
	}
	srv := &http.Server{Handler: handler}
	fmt.Fprintf(o.stderr, "p2pgridsim: serving %s on %s (%s clock, %s scale, %s, max %d in flight)\n",
		wire.APIV1, ln.Addr(), svc.Clock(), o.scale.Name, o.algo, o.maxInFlight)

	serveErr := make(chan error, 1)
	go func() { serveErr <- srv.Serve(ln) }()

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, syscall.SIGTERM, os.Interrupt)
	defer signal.Stop(sig)

	select {
	case err := <-serveErr:
		return fmt.Errorf("serve: %w", err)
	case s := <-sig:
		fmt.Fprintf(o.stderr, "p2pgridsim: %v: draining (in-flight workflows finish, new submissions are refused)\n", s)
	}

	m, drainErr := svc.Drain()
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil && !errors.Is(err, http.ErrServerClosed) {
		fmt.Fprintln(o.stderr, "p2pgridsim: http shutdown:", err)
	}
	if drainErr != nil {
		return drainErr
	}
	fmt.Fprintf(o.stderr, "p2pgridsim: drained at t=%.0fs: %d admitted, %d completed, %d failed, %d rejected, %d dropped\n",
		m.NowSeconds, m.Admitted, m.Snapshot.Completed, m.Snapshot.Failed, m.Rejected, m.Dropped)
	return nil
}
