package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

const baselineJSON = `{
  "schema": "p2pgridsim/bench-baseline/v2",
  "benchmark": "BenchmarkSingleDSMFRun",
  "environment": {"goos": "linux", "cpu": "test", "go": "go1.24"},
  "metrics": {"ns_per_op": 100000000, "bytes_per_op": 2000000, "allocs_per_op": 20000},
  "thresholds": {"ns_per_op": 0.20, "bytes_per_op": 0.20}
}`

// benchLines renders count result lines at the given metrics, in the exact
// layout `go test -bench -benchmem` prints.
func benchLines(ns, bytesOp, allocs float64, count int) string {
	var b strings.Builder
	b.WriteString("goos: linux\ngoarch: amd64\npkg: repro\n")
	for i := 0; i < count; i++ {
		// Vary ns/op slightly so the median logic is exercised.
		jitter := float64(i-count/2) * 1e5
		fmt.Fprintf(&b, "BenchmarkSingleDSMFRun-8   \t      20\t  %.0f ns/op\t %.0f B/op\t   %.0f allocs/op\n",
			ns+jitter, bytesOp, allocs)
	}
	b.WriteString("PASS\nok  \trepro\t1.234s\n")
	return b.String()
}

func writeBaseline(t *testing.T) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "baseline.json")
	if err := os.WriteFile(path, []byte(baselineJSON), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func runGate(t *testing.T, baselinePath, benchOutput string) (code int, stdout, stderr string) {
	t.Helper()
	inPath := filepath.Join(t.TempDir(), "bench.txt")
	if err := os.WriteFile(inPath, []byte(benchOutput), 0o644); err != nil {
		t.Fatal(err)
	}
	var out, errBuf bytes.Buffer
	code = gateMain([]string{"-baseline", baselinePath, "-input", inPath}, &out, &errBuf)
	return code, out.String(), errBuf.String()
}

func TestGatePassesAtBaseline(t *testing.T) {
	base := writeBaseline(t)
	code, stdout, stderr := runGate(t, base, benchLines(100e6, 2e6, 20000, 5))
	if code != 0 {
		t.Fatalf("exit %d\nstdout:\n%s\nstderr:\n%s", code, stdout, stderr)
	}
	if !strings.Contains(stdout, "median of 5 runs") {
		t.Fatalf("report:\n%s", stdout)
	}
}

func TestGatePassesWithinThreshold(t *testing.T) {
	base := writeBaseline(t)
	// +15% ns/op and +10% B/op: noisy but inside the 20% gate.
	code, stdout, _ := runGate(t, base, benchLines(115e6, 2.2e6, 21000, 5))
	if code != 0 {
		t.Fatalf("within-threshold run failed:\n%s", stdout)
	}
}

// TestGateFailsOnSyntheticRegression is the acceptance check: a synthetic
// >20% regression must fail the gate.
func TestGateFailsOnSyntheticRegression(t *testing.T) {
	base := writeBaseline(t)
	// +30% ns/op.
	code, stdout, _ := runGate(t, base, benchLines(130e6, 2e6, 20000, 5))
	if code != 1 {
		t.Fatalf("ns/op regression not caught (exit %d):\n%s", code, stdout)
	}
	if !strings.Contains(stdout, "FAIL") {
		t.Fatalf("report missing FAIL verdict:\n%s", stdout)
	}
	// +25% B/op with flat ns/op must also fail.
	code, stdout, _ = runGate(t, base, benchLines(100e6, 2.5e6, 20000, 5))
	if code != 1 {
		t.Fatalf("B/op regression not caught (exit %d):\n%s", code, stdout)
	}
}

func TestGateReportsImprovement(t *testing.T) {
	base := writeBaseline(t)
	code, stdout, _ := runGate(t, base, benchLines(60e6, 1.2e6, 15000, 3))
	if code != 0 {
		t.Fatalf("improvement failed the gate:\n%s", stdout)
	}
	if !strings.Contains(stdout, "refreshing the baseline") {
		t.Fatalf("improvement not flagged:\n%s", stdout)
	}
}

func TestGateErrorPaths(t *testing.T) {
	base := writeBaseline(t)
	var out, errBuf bytes.Buffer
	if code := gateMain([]string{"-baseline", "/nonexistent.json"}, &out, &errBuf); code != 2 {
		t.Fatalf("missing baseline exited %d", code)
	}
	// Input without any matching benchmark lines.
	if code, _, stderr := runGate(t, base, "PASS\nok repro 1s\n"); code != 2 || !strings.Contains(stderr, "no BenchmarkSingleDSMFRun results") {
		t.Fatalf("empty input exited %d, stderr: %s", code, stderr)
	}
	// Stray positional args.
	if code := gateMain([]string{"extra"}, &out, &errBuf); code != 2 {
		t.Fatalf("positional args exited %d", code)
	}
}

func TestGateFailsWithoutBenchmem(t *testing.T) {
	base := writeBaseline(t)
	// ns/op-only lines (no -benchmem): the B/op gate must fail loudly
	// instead of reading 0 as an improvement.
	in := "BenchmarkSingleDSMFRun-8 \t 20 \t 100000000 ns/op\n"
	code, stdout, _ := runGate(t, base, in)
	if code != 1 {
		t.Fatalf("missing B/op passed the gate (exit %d):\n%s", code, stdout)
	}
	if !strings.Contains(stdout, "metric missing") {
		t.Fatalf("report does not explain the failure:\n%s", stdout)
	}
}

func TestParseBenchMedian(t *testing.T) {
	in := strings.NewReader(
		"BenchmarkSingleDSMFRun-8 \t 20 \t 300 ns/op \t 50 B/op \t 7 allocs/op\n" +
			"BenchmarkSingleDSMFRun-8 \t 20 \t 100 ns/op \t 52 B/op \t 7 allocs/op\n" +
			"BenchmarkSingleDSMFRun-8 \t 20 \t 200 ns/op \t 51 B/op \t 7 allocs/op\n" +
			"BenchmarkOther-8 \t 20 \t 999 ns/op \t 9 B/op \t 1 allocs/op\n")
	samples, err := parseBench(in, "BenchmarkSingleDSMFRun")
	if err != nil {
		t.Fatal(err)
	}
	if len(samples) != 3 {
		t.Fatalf("parsed %d samples, want 3", len(samples))
	}
	ns := []float64{samples[0].nsPerOp, samples[1].nsPerOp, samples[2].nsPerOp}
	if got := median(ns); got != 200 {
		t.Fatalf("median %v, want 200", got)
	}
	if got := median([]float64{1, 2, 3, 4}); got != 2.5 {
		t.Fatalf("even median %v, want 2.5", got)
	}
}

const cpuKeyedBaselineJSON = `{
  "schema": "p2pgridsim/bench-baseline/v3",
  "benchmark": "BenchmarkSingleDSMFRun",
  "environment": {"goos": "linux", "cpu": "Recorded Host CPU", "go": "go1.24"},
  "metrics": {"ns_per_op": 100000000, "bytes_per_op": 2000000, "allocs_per_op": 20000},
  "thresholds": {"ns_per_op": 0.20, "bytes_per_op": 0.20},
  "baselines": [
    {
      "cpu": "Fast CI Runner v5",
      "metrics": {"ns_per_op": 50000000, "bytes_per_op": 2000000, "allocs_per_op": 20000},
      "thresholds": {"ns_per_op": 0.10}
    }
  ]
}`

func runGateCPU(t *testing.T, cpu, benchOutput string) (code int, stdout string) {
	t.Helper()
	dir := t.TempDir()
	basePath := filepath.Join(dir, "baseline.json")
	if err := os.WriteFile(basePath, []byte(cpuKeyedBaselineJSON), 0o644); err != nil {
		t.Fatal(err)
	}
	inPath := filepath.Join(dir, "bench.txt")
	if err := os.WriteFile(inPath, []byte(benchOutput), 0o644); err != nil {
		t.Fatal(err)
	}
	var out, errBuf bytes.Buffer
	code = gateMain([]string{"-baseline", basePath, "-input", inPath, "-cpu", cpu}, &out, &errBuf)
	return code, out.String()
}

// TestGateSelectsPerCPUBaseline pins the CPU-keyed schema: a matching
// model gates against its own entry (metrics AND tightened thresholds),
// case-insensitively.
func TestGateSelectsPerCPUBaseline(t *testing.T) {
	// 100e6 ns/op is exactly the recorded host's baseline, but a +100%
	// regression against the fast runner's 50e6 entry.
	code, stdout := runGateCPU(t, "fast ci runner V5", benchLines(100e6, 2e6, 20000, 5))
	if code != 1 {
		t.Fatalf("per-CPU regression not caught (exit %d):\n%s", code, stdout)
	}
	if !strings.Contains(stdout, `per-CPU baseline "Fast CI Runner v5"`) {
		t.Fatalf("report does not name the per-CPU baseline:\n%s", stdout)
	}
	// At the entry's own level it passes; its tightened 10% ns/op
	// threshold is live (+15% fails where the recorded host's 20% would
	// not).
	if code, stdout = runGateCPU(t, "Fast CI Runner v5", benchLines(50e6, 2e6, 20000, 5)); code != 0 {
		t.Fatalf("at-baseline run failed:\n%s", stdout)
	}
	if code, stdout = runGateCPU(t, "Fast CI Runner v5", benchLines(57.5e6, 2e6, 20000, 5)); code != 1 {
		t.Fatalf("tightened per-CPU threshold not applied (exit %d):\n%s", code, stdout)
	}
}

// TestGateFallsBackToRecordedHost pins the graceful fallback: an unknown
// CPU gates against the top-level recorded-host metrics and the report
// says so.
func TestGateFallsBackToRecordedHost(t *testing.T) {
	code, stdout := runGateCPU(t, "Mystery Engine 9000", benchLines(100e6, 2e6, 20000, 5))
	if code != 0 {
		t.Fatalf("fallback run failed (exit %d):\n%s", code, stdout)
	}
	if !strings.Contains(stdout, "recorded-host baseline (Recorded Host CPU)") ||
		!strings.Contains(stdout, `no per-CPU entry for "Mystery Engine 9000"`) {
		t.Fatalf("fallback not explained:\n%s", stdout)
	}
}

func TestDetectCPUNeverPanics(t *testing.T) {
	// Whatever the platform, detection must return without error; on
	// linux it should find a non-empty model name.
	model := detectCPU()
	if _, err := os.Stat("/proc/cpuinfo"); err == nil && model == "" {
		t.Skip("cpuinfo present but modelless (container?); nothing to assert")
	}
	t.Logf("detected CPU model: %q", model)
}

const calibratedBaselineJSON = `{
  "schema": "p2pgridsim/bench-baseline/v3",
  "benchmark": "BenchmarkSingleDSMFRun",
  "environment": {"goos": "linux", "cpu": "Recorded Host CPU", "go": "go1.24"},
  "metrics": {"ns_per_op": 100000000, "bytes_per_op": 2000000, "allocs_per_op": 20000},
  "thresholds": {"ns_per_op": 0.20, "bytes_per_op": 0.20},
  "calibration": {"ns_per_pass": 10000000},
  "baselines": [
    {
      "cpu": "Known Runner",
      "metrics": {"ns_per_op": 50000000, "bytes_per_op": 2000000, "allocs_per_op": 20000}
    }
  ]
}`

func runGateArgs(t *testing.T, baselineJSON, benchOutput string, extra ...string) (code int, stdout, stderr string) {
	t.Helper()
	dir := t.TempDir()
	basePath := filepath.Join(dir, "baseline.json")
	if err := os.WriteFile(basePath, []byte(baselineJSON), 0o644); err != nil {
		t.Fatal(err)
	}
	inPath := filepath.Join(dir, "bench.txt")
	if err := os.WriteFile(inPath, []byte(benchOutput), 0o644); err != nil {
		t.Fatal(err)
	}
	var out, errBuf bytes.Buffer
	args := append([]string{"-baseline", basePath, "-input", inPath}, extra...)
	code = gateMain(args, &out, &errBuf)
	return code, out.String(), errBuf.String()
}

// TestGateCalibratedFallback pins the calibration satellite: on an unknown
// CPU whose calibration pass runs 2x slower than the recorded host's, a
// 2x-slower ns/op median is at baseline (passes), while 2.5x slower is a
// +25% normalized regression and fails — the fallback now gates at the
// same 20% as a known CPU.
func TestGateCalibratedFallback(t *testing.T) {
	// Local pass 20ms vs recorded 10ms: ratio 2. Measured 190e6 ns/op
	// against the normalized 200e6 baseline: -5%, pass.
	code, stdout, _ := runGateArgs(t, calibratedBaselineJSON, benchLines(190e6, 2e6, 20000, 5),
		"-cpu", "Mystery Engine 9000", "-calibration-ns", "20000000")
	if code != 0 {
		t.Fatalf("calibrated at-baseline run failed (exit %d):\n%s", code, stdout)
	}
	if !strings.Contains(stdout, "ratio 2.000") || !strings.Contains(stdout, "normalized") {
		t.Fatalf("calibration not reported:\n%s", stdout)
	}
	// 250e6 vs normalized 200e6: +25%, fail — loose no more.
	code, stdout, _ = runGateArgs(t, calibratedBaselineJSON, benchLines(250e6, 2e6, 20000, 5),
		"-cpu", "Mystery Engine 9000", "-calibration-ns", "20000000")
	if code != 1 {
		t.Fatalf("calibrated fallback missed a +25%% regression (exit %d):\n%s", code, stdout)
	}
	// A per-CPU match never calibrates, even with -calibration-ns given.
	code, stdout, _ = runGateArgs(t, calibratedBaselineJSON, benchLines(50e6, 2e6, 20000, 5),
		"-cpu", "Known Runner", "-calibration-ns", "20000000")
	if code != 0 {
		t.Fatalf("per-CPU run failed (exit %d):\n%s", code, stdout)
	}
	if strings.Contains(stdout, "normalized") {
		t.Fatalf("per-CPU match applied calibration:\n%s", stdout)
	}
	// A baseline without a calibration block keeps the uncalibrated
	// fallback behavior (2x "regression" passes loosely on a faster host —
	// nothing to normalize against).
	code, stdout, _ = runGateArgs(t, cpuKeyedBaselineJSON, benchLines(100e6, 2e6, 20000, 5),
		"-cpu", "Mystery Engine 9000", "-calibration-ns", "20000000")
	if code != 0 || strings.Contains(stdout, "normalized") {
		t.Fatalf("calibration applied without a recorded pass time (exit %d):\n%s", code, stdout)
	}
}

// TestCalibrateFlagAndKernel: -calibrate measures and reports without
// gating, the kernel is deterministic work (two passes agree to sane
// bounds is NOT asserted — wall time varies — but the flag contract is).
func TestCalibrateFlagAndKernel(t *testing.T) {
	var out, errBuf bytes.Buffer
	code := gateMain([]string{"-calibrate", "-calibration-passes", "1"}, &out, &errBuf)
	if code != 0 {
		t.Fatalf("-calibrate exited %d, stderr: %s", code, errBuf.String())
	}
	if !strings.Contains(out.String(), "ns/pass") {
		t.Fatalf("calibration output: %q", out.String())
	}
	if ns := calibrate(1); ns <= 0 {
		t.Fatalf("calibration time %v", ns)
	}
	if code := gateMain([]string{"-calibration-passes", "0"}, &out, &errBuf); code != 2 {
		t.Fatalf("non-positive passes exited %d", code)
	}
	if code := gateMain([]string{"-calibration-ns", "-5"}, &out, &errBuf); code != 2 {
		t.Fatalf("negative calibration-ns exited %d", code)
	}
}

// TestRecordCandidate pins the baseline auto-append satellite: the
// candidate file carries a promotable envBaseline entry with this run's
// medians, and the summary names the CPU.
func TestRecordCandidate(t *testing.T) {
	dir := t.TempDir()
	candPath := filepath.Join(dir, "candidate.json")
	code, stdout, stderr := runGateArgs(t, calibratedBaselineJSON, benchLines(190e6, 2e6, 20000, 5),
		"-cpu", "New Runner Class", "-calibration-ns", "20000000", "-record-candidate", candPath)
	if code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, stderr)
	}
	if !strings.Contains(stdout, `candidate baseline for "New Runner Class"`) {
		t.Fatalf("candidate summary missing:\n%s", stdout)
	}
	data, err := os.ReadFile(candPath)
	if err != nil {
		t.Fatal(err)
	}
	var doc candidateJSON
	if err := json.Unmarshal(data, &doc); err != nil {
		t.Fatalf("candidate not valid JSON: %v", err)
	}
	if doc.Schema != "p2pgridsim/bench-candidate/v1" || doc.Samples != 5 {
		t.Fatalf("candidate header: %+v", doc)
	}
	if doc.Entry.CPU != "New Runner Class" || doc.Entry.Metrics.NsPerOp != 190e6 ||
		doc.Entry.Metrics.BytesPerOp != 2e6 || doc.Entry.Metrics.AllocsPerOp != 20000 {
		t.Fatalf("candidate entry: %+v", doc.Entry)
	}
	if doc.CalibrationNs != 20000000 {
		t.Fatalf("candidate calibration %v, want the supplied 20ms", doc.CalibrationNs)
	}
	if doc.Entry.Recorded == "" {
		t.Fatal("candidate entry missing a recorded date")
	}
	// An unwritable candidate path fails loudly.
	if code, _, stderr := runGateArgs(t, calibratedBaselineJSON, benchLines(190e6, 2e6, 20000, 5),
		"-cpu", "x", "-calibration-ns", "1", "-record-candidate", "/nonexistent-dir/c.json"); code != 2 || stderr == "" {
		t.Fatalf("unwritable candidate exited %d", code)
	}
}
