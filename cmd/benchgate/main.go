// Command benchgate is the CI perf-regression gate: it parses `go test
// -bench` output, takes the per-metric median across -count repetitions,
// and compares it against the committed baseline (BENCH_baseline.json),
// failing on regressions beyond the baseline's thresholds.
//
// Usage:
//
//	go test -run=NONE -bench=BenchmarkSingleDSMFRun -benchmem -count=5 . \
//	    | go run ./cmd/benchgate -baseline BENCH_baseline.json
//
// ns/op is gated with a generous threshold (CI runners are noisy; the
// median across -count repetitions absorbs most of it). B/op is
// deterministic for this simulator, so the same threshold catches real
// allocation regressions exactly. allocs/op is reported but not gated.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"sort"
	"strconv"
	"strings"
	"time"
)

func main() {
	os.Exit(gateMain(os.Args[1:], os.Stdout, os.Stderr))
}

// metricsBlock is one recorded measurement set.
type metricsBlock struct {
	NsPerOp     float64 `json:"ns_per_op"`
	BytesPerOp  float64 `json:"bytes_per_op"`
	AllocsPerOp float64 `json:"allocs_per_op"`
}

// thresholdBlock is a pair of relative regression bounds.
type thresholdBlock struct {
	NsPerOp    float64 `json:"ns_per_op"`
	BytesPerOp float64 `json:"bytes_per_op"`
}

// envBaseline is a per-environment baseline keyed by CPU model: hosted
// runners and dev machines differ enough in ns/op that one recorded host
// cannot gate them all sharply.
type envBaseline struct {
	CPU        string         `json:"cpu"`
	Recorded   string         `json:"recorded,omitempty"`
	Metrics    metricsBlock   `json:"metrics"`
	Thresholds thresholdBlock `json:"thresholds,omitempty"`
}

// calibrationBlock records the fixed-work calibration kernel's pass time
// on the recorded host (see calibrate.go). When present, the recorded-host
// fallback scales its ns/op baseline by (local pass time / recorded pass
// time) so unknown CPUs gate at the normal threshold instead of loosely.
type calibrationBlock struct {
	NsPerPass float64 `json:"ns_per_pass"`
}

// baseline mirrors BENCH_baseline.json (schema p2pgridsim/bench-baseline/v3;
// v2 files, without the baselines array, load and gate exactly as before,
// as do v3 files without the calibration block).
type baseline struct {
	Schema      string            `json:"schema"`
	Benchmark   string            `json:"benchmark"`
	Config      string            `json:"config"`
	Environment map[string]string `json:"environment"`
	Metrics     metricsBlock      `json:"metrics"`
	Thresholds  thresholdBlock    `json:"thresholds"`
	Calibration calibrationBlock  `json:"calibration,omitempty"`
	// Baselines holds per-CPU entries; the top-level metrics are the
	// recorded-host fallback for CPUs without one.
	Baselines []envBaseline     `json:"baselines,omitempty"`
	History   []json.RawMessage `json:"history"`
}

// resolve selects the baseline for the given CPU model: the matching
// per-CPU entry when one exists (its zero thresholds fall back to the
// top-level ones), otherwise the recorded-host metrics. It rewrites
// b.Metrics/b.Thresholds in place and returns a report note naming the
// choice, plus whether the recorded-host fallback was selected (the case
// calibration then normalizes). Matching is case-insensitive on the
// trimmed model string.
func (b *baseline) resolve(cpu string) (note string, fallback bool) {
	norm := strings.ToLower(strings.TrimSpace(cpu))
	if norm != "" {
		for _, e := range b.Baselines {
			if strings.ToLower(strings.TrimSpace(e.CPU)) != norm {
				continue
			}
			b.Metrics = e.Metrics
			if e.Thresholds.NsPerOp > 0 {
				b.Thresholds.NsPerOp = e.Thresholds.NsPerOp
			}
			if e.Thresholds.BytesPerOp > 0 {
				b.Thresholds.BytesPerOp = e.Thresholds.BytesPerOp
			}
			return fmt.Sprintf("per-CPU baseline %q", e.CPU), false
		}
	}
	recorded := b.Environment["cpu"]
	if norm == "" {
		return fmt.Sprintf("recorded-host baseline (%s); local CPU model unknown", recorded), true
	}
	return fmt.Sprintf("recorded-host baseline (%s); no per-CPU entry for %q", recorded, cpu), true
}

// detectCPU reads the local CPU model (the per-CPU baseline key) from
// /proc/cpuinfo; on platforms without it the empty string selects the
// recorded-host fallback.
func detectCPU() string {
	data, err := os.ReadFile("/proc/cpuinfo")
	if err != nil {
		return ""
	}
	for _, line := range strings.Split(string(data), "\n") {
		key, val, ok := strings.Cut(line, ":")
		if ok && strings.TrimSpace(key) == "model name" {
			return strings.TrimSpace(val)
		}
	}
	return ""
}

// sample is one parsed benchmark result line.
type sample struct {
	nsPerOp     float64
	bytesPerOp  float64
	allocsPerOp float64
}

func gateMain(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("benchgate", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		baselinePath = fs.String("baseline", "BENCH_baseline.json", "baseline JSON file")
		input        = fs.String("input", "-", "benchmark output file (- for stdin)")
		threshold    = fs.Float64("threshold", 0, "override both regression thresholds (0 = use the baseline's)")
		cpu          = fs.String("cpu", "", "CPU model selecting a per-CPU baseline entry (default: auto-detect from /proc/cpuinfo; unmatched models fall back to the recorded host)")
		calOnly      = fs.Bool("calibrate", false, "measure the fixed-work calibration kernel on this host, print its pass time, and exit (record it as the baseline's calibration.ns_per_pass)")
		calNS        = fs.Float64("calibration-ns", 0, "use this as the local calibration pass time instead of measuring (tests and pre-measured hosts)")
		calPasses    = fs.Int("calibration-passes", 5, "calibration kernel repetitions (the median is used)")
		candidate    = fs.String("record-candidate", "", "write a per-CPU baseline candidate entry (this host's medians + calibration) to this file, for hand promotion into the baseline's baselines array")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if fs.NArg() > 0 {
		fmt.Fprintf(stderr, "benchgate: unexpected arguments %q\n", fs.Args())
		return 2
	}
	if *calPasses < 1 {
		fmt.Fprintf(stderr, "benchgate: -calibration-passes must be positive, got %d\n", *calPasses)
		return 2
	}
	if *calNS < 0 {
		fmt.Fprintf(stderr, "benchgate: -calibration-ns must be non-negative, got %v\n", *calNS)
		return 2
	}
	localCal := func() float64 {
		if *calNS > 0 {
			return *calNS
		}
		return calibrate(*calPasses)
	}
	if *calOnly {
		fmt.Fprintf(stdout, "benchgate: calibration %.0f ns/pass (median of %d)\n", localCal(), *calPasses)
		return 0
	}

	base, err := loadBaseline(*baselinePath)
	if err != nil {
		fmt.Fprintln(stderr, "benchgate:", err)
		return 2
	}
	model := *cpu
	if model == "" {
		model = detectCPU()
	}
	note, fallback := base.resolve(model)
	fmt.Fprintf(stdout, "benchgate: using %s\n", note)
	measuredCal := 0.0
	if (fallback && base.Calibration.NsPerPass > 0) || *candidate != "" {
		measuredCal = localCal()
	}
	if fallback && base.Calibration.NsPerPass > 0 {
		// Calibrated fallback: scale the recorded ns/op to this host's
		// speed so the normal threshold gates sharply on unknown CPUs.
		ratio := measuredCal / base.Calibration.NsPerPass
		base.Metrics.NsPerOp *= ratio
		fmt.Fprintf(stdout, "benchgate: calibration %.2f ms/pass vs recorded %.2f ms/pass (ratio %.3f) — ns/op baseline normalized to this host\n",
			measuredCal/1e6, base.Calibration.NsPerPass/1e6, ratio)
	}
	in := io.Reader(os.Stdin)
	if *input != "-" {
		f, err := os.Open(*input)
		if err != nil {
			fmt.Fprintln(stderr, "benchgate:", err)
			return 2
		}
		defer f.Close()
		in = f
	}
	samples, err := parseBench(in, base.Benchmark)
	if err != nil {
		fmt.Fprintln(stderr, "benchgate:", err)
		return 2
	}
	if *candidate != "" {
		if err := writeCandidate(*candidate, base.Benchmark, model, samples, measuredCal, stdout); err != nil {
			fmt.Fprintln(stderr, "benchgate:", err)
			return 2
		}
	}

	nsThresh, bThresh := base.Thresholds.NsPerOp, base.Thresholds.BytesPerOp
	if *threshold > 0 {
		nsThresh, bThresh = *threshold, *threshold
	}
	report, failed := gate(base, samples, nsThresh, bThresh)
	fmt.Fprint(stdout, report)
	if failed {
		return 1
	}
	return 0
}

// candidateJSON is the -record-candidate artifact: the entry object is
// exactly the envBaseline shape, so promoting a new runner class is a
// copy-paste of that object into the baseline's baselines array once its
// medians have been observed across enough runs.
type candidateJSON struct {
	Schema         string      `json:"schema"`
	Benchmark      string      `json:"benchmark"`
	Samples        int         `json:"samples"`
	CalibrationNs  float64     `json:"calibration_ns_per_pass,omitempty"`
	PromoteComment string      `json:"promote"`
	Entry          envBaseline `json:"entry"`
}

// writeCandidate records this host's medians as a promotable per-CPU
// baseline entry and prints a human summary (CI surfaces it as a step
// summary next to the uploaded artifact).
func writeCandidate(path, benchmark, cpu string, samples []sample, calNs float64, stdout io.Writer) error {
	ns := make([]float64, len(samples))
	bs := make([]float64, len(samples))
	al := make([]float64, len(samples))
	for i, s := range samples {
		ns[i], bs[i], al[i] = s.nsPerOp, s.bytesPerOp, s.allocsPerOp
	}
	if cpu == "" {
		cpu = "unknown-cpu"
	}
	doc := candidateJSON{
		Schema:         "p2pgridsim/bench-candidate/v1",
		Benchmark:      benchmark,
		Samples:        len(samples),
		CalibrationNs:  calNs,
		PromoteComment: "append \"entry\" to the baselines array of BENCH_baseline.json once this runner class's medians look stable across runs",
		Entry: envBaseline{
			CPU:      cpu,
			Recorded: time.Now().UTC().Format("2006-01-02"),
			Metrics: metricsBlock{
				NsPerOp:     median(ns),
				BytesPerOp:  median(bs),
				AllocsPerOp: median(al),
			},
		},
	}
	data, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
		return err
	}
	fmt.Fprintf(stdout, "benchgate: candidate baseline for %q written to %s\n", cpu, path)
	fmt.Fprintf(stdout, "  ns/op median %14.0f  (%d samples)\n", doc.Entry.Metrics.NsPerOp, len(samples))
	fmt.Fprintf(stdout, "  B/op  median %14.0f  allocs/op median %.0f\n", doc.Entry.Metrics.BytesPerOp, doc.Entry.Metrics.AllocsPerOp)
	if calNs > 0 {
		fmt.Fprintf(stdout, "  calibration  %11.2f ms/pass\n", calNs/1e6)
	}
	return nil
}

func loadBaseline(path string) (baseline, error) {
	var b baseline
	data, err := os.ReadFile(path)
	if err != nil {
		return b, err
	}
	if err := json.Unmarshal(data, &b); err != nil {
		return b, fmt.Errorf("parse %s: %w", path, err)
	}
	if b.Benchmark == "" {
		return b, fmt.Errorf("%s: missing benchmark name", path)
	}
	if b.Metrics.NsPerOp <= 0 || b.Metrics.BytesPerOp <= 0 {
		return b, fmt.Errorf("%s: missing baseline metrics", path)
	}
	if b.Thresholds.NsPerOp <= 0 {
		b.Thresholds.NsPerOp = 0.20
	}
	if b.Thresholds.BytesPerOp <= 0 {
		b.Thresholds.BytesPerOp = 0.20
	}
	return b, nil
}

// parseBench extracts every result line of the named benchmark from `go
// test -bench -benchmem` output. Lines look like:
//
//	BenchmarkSingleDSMFRun-8   20   62782550 ns/op   2057747 B/op   22730 allocs/op
//
// The -N GOMAXPROCS suffix is optional and ignored.
func parseBench(r io.Reader, name string) ([]sample, error) {
	var out []sample
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1024*1024), 1024*1024)
	for sc.Scan() {
		fields := strings.Fields(sc.Text())
		if len(fields) < 4 {
			continue
		}
		bench := fields[0]
		if i := strings.LastIndex(bench, "-"); i > 0 {
			if _, err := strconv.Atoi(bench[i+1:]); err == nil {
				bench = bench[:i]
			}
		}
		if bench != name {
			continue
		}
		var s sample
		ok := false
		for i := 2; i+1 < len(fields); i += 2 {
			v, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				continue
			}
			switch fields[i+1] {
			case "ns/op":
				s.nsPerOp = v
				ok = true
			case "B/op":
				s.bytesPerOp = v
			case "allocs/op":
				s.allocsPerOp = v
			}
		}
		if ok {
			out = append(out, s)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("no %s results found in input (need `go test -bench=%s -benchmem`)", name, name)
	}
	return out, nil
}

func median(xs []float64) float64 {
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	n := len(sorted)
	if n%2 == 1 {
		return sorted[n/2]
	}
	return (sorted[n/2-1] + sorted[n/2]) / 2
}

// gate compares sample medians against the baseline and renders the
// verdict. It fails on ns/op or B/op medians above baseline*(1+threshold);
// allocs/op is informational.
func gate(base baseline, samples []sample, nsThresh, bThresh float64) (report string, failed bool) {
	ns := make([]float64, len(samples))
	bs := make([]float64, len(samples))
	al := make([]float64, len(samples))
	for i, s := range samples {
		ns[i], bs[i], al[i] = s.nsPerOp, s.bytesPerOp, s.allocsPerOp
	}
	var b strings.Builder
	fmt.Fprintf(&b, "benchgate: %s, median of %d runs vs baseline (%s, %s)\n",
		base.Benchmark, len(samples), base.Environment["cpu"], base.Environment["go"])
	check := func(metric string, got, want, thresh float64, gated bool) {
		if gated && got <= 0 {
			// A gated metric missing from the input (e.g. B/op without
			// -benchmem) must fail, not masquerade as an improvement.
			fmt.Fprintf(&b, "  %-10s %14s  baseline %14.0f  %8s  FAIL (metric missing - run with -benchmem)\n",
				metric, "absent", want, "")
			failed = true
			return
		}
		delta := got/want - 1
		verdict := "ok"
		switch {
		case !gated:
			verdict = "info"
		case delta > thresh:
			verdict = fmt.Sprintf("FAIL (> +%.0f%%)", thresh*100)
			failed = true
		case delta < -thresh:
			verdict = "improved - consider refreshing the baseline"
		}
		fmt.Fprintf(&b, "  %-10s %14.0f  baseline %14.0f  %+7.2f%%  %s\n",
			metric, got, want, delta*100, verdict)
	}
	check("ns/op", median(ns), base.Metrics.NsPerOp, nsThresh, true)
	check("B/op", median(bs), base.Metrics.BytesPerOp, bThresh, true)
	if base.Metrics.AllocsPerOp > 0 {
		check("allocs/op", median(al), base.Metrics.AllocsPerOp, 0, false)
	}
	return b.String(), failed
}
