package main

import (
	"sort"
	"time"
)

// This file is the bench-calibration satellite: a fixed-work CPU kernel
// whose wall time, measured on the recorded host and on the gating host,
// yields a speed ratio that normalizes ns/op across CPUs the baseline has
// never seen. Per-CPU baseline entries gate sharply by construction; the
// recorded-host fallback used to gate loosely (a faster hosted runner
// never false-fails, and never true-fails either). With calibration the
// fallback scales the recorded ns/op by (local pass time / recorded pass
// time) before comparing, so an unknown CPU is held to the same relative
// threshold as a known one.
//
// The kernel imitates the simulator's instruction mix rather than a pure
// arithmetic loop: the hot path (gossip merge, RPM scoring, event loop) is
// float compare/multiply/divide over small slices with data-dependent
// branches and integer index chasing, so that is what the pass does. The
// work is fixed and deterministic — no allocation inside the timed region,
// no parallelism (the benchmark itself is single-threaded per run) — so
// pass time varies only with the hardware and its load.

// calibrationSize is the working-set element count: 512 KiB of float64s,
// comfortably above L1/L2 so memory behavior resembles the simulator's
// cache profile rather than a register-only loop.
const calibrationSize = 1 << 16

// calibrationSweeps fixes the work per pass; with calibrationSize this
// lands around 5-15 ms on 2015-2025 x86 server cores — long enough to
// swamp timer noise, short enough that a handful of passes stays well
// under a tenth of a second of gate overhead.
const calibrationSweeps = 64

// calSink defeats dead-code elimination of the kernel.
var calSink float64

// calibrationPass runs the fixed kernel once over buf (len
// calibrationSize) and returns a checksum.
func calibrationPass(buf []float64) float64 {
	// Deterministic refill: a cheap LCG stream, integer-heavy like the
	// simulator's seed derivation.
	state := uint64(0x9E3779B97F4A7C15)
	for i := range buf {
		state = state*6364136223846793005 + 1442695040888963407
		buf[i] = 1 + float64(state>>40)/float64(1<<24)
	}
	sum := 0.0
	idx := 0
	for s := 0; s < calibrationSweeps; s++ {
		// Data-dependent branching over a strided walk: the gossip-merge /
		// best-candidate-scan shape (compare, occasionally divide, carry a
		// running best forward).
		best := buf[idx]
		for i := 0; i < calibrationSize; i++ {
			idx = (idx*25 + 1) & (calibrationSize - 1)
			v := buf[idx]
			if v > best {
				best = v*0.5 + best*0.5
			} else {
				sum += v / best
			}
		}
		buf[s&(calibrationSize-1)] = sum * 1e-9
	}
	return sum + maxOf(buf)
}

// maxOf returns the slice maximum (tiny helper kept out of the sweep loop).
func maxOf(buf []float64) float64 {
	m := buf[0]
	for _, v := range buf[1:] {
		if v > m {
			m = v
		}
	}
	return m
}

// calibrate measures the kernel: the median wall time of passes runs, in
// nanoseconds, after one untimed warmup pass (first-touch page faults and
// frequency ramp-up are not CPU speed).
func calibrate(passes int) float64 {
	if passes < 1 {
		passes = 1
	}
	buf := make([]float64, calibrationSize)
	calSink += calibrationPass(buf) // warmup, untimed
	times := make([]float64, passes)
	for i := range times {
		start := time.Now()
		calSink += calibrationPass(buf)
		times[i] = float64(time.Since(start).Nanoseconds())
	}
	sort.Float64s(times)
	n := len(times)
	if n%2 == 1 {
		return times[n/2]
	}
	return (times[n/2-1] + times[n/2]) / 2
}
